//! Round-based end-to-end network simulator (Figs. 15 and 16).
//!
//! The simulator plays out full-buffer downlink traffic in a multi-AP network
//! over a sequence of TXOP rounds.  Within a round the APs attempt channel
//! access in a random order (standing in for the backoff race); an AP — or in
//! MIDAS, each of its distributed antennas — joins the round only if it does
//! not carrier-sense a transmitter that already won the round.  Winning APs
//! select clients (MIDAS: virtual packet tagging + antenna-specific DRR; CAS:
//! fairness-only), precode (MIDAS: power-balanced; CAS: naïve global scaling)
//! and the resulting per-client SINRs include *cross-AP interference* from
//! every other concurrent transmission, so more spatial reuse only pays off
//! when the interference geometry allows it — exactly the trade-off §5.4
//! discusses.

use crate::capture::ContentionModel;
use crate::contention::ContentionGraph;
use crate::dynamics::{DynamicsSpec, DynamicsState};
use crate::metrics::Cdf;
use crate::observer::{Accumulate, Observer, RoundRecord};
use crate::scale::index::SpatialIndex;
use crate::traffic::{FullBuffer, TrafficKind, TrafficModel};
use midas_channel::geometry::Point;
use midas_channel::topology::Topology;
use midas_channel::{ChannelMatrix, ChannelModel, Environment, FadingEngine, SimRng};
use midas_linalg::{CMat, Complex};
use midas_mac::client_select::{select_clients_cas, select_clients_midas};
use midas_mac::drr::DrrScheduler;
use midas_mac::tagging::TagTable;
use midas_mac::timing::DEFAULT_TXOP_US;
use midas_phy::capacity::shannon_capacity_bps_hz;
use midas_phy::precoder::{make_precoder, Precoder, PrecoderKind};
use std::time::Instant;

/// Which MAC discipline the APs run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MacKind {
    /// MIDAS: per-antenna carrier sensing, packet tagging, DRR per antenna.
    Midas,
    /// CAS baseline: single channel state, all antennas, fairness-only selection.
    Cas,
}

/// How the simulator answers "who is near this point?" — carrier-sense and
/// cross-AP interference neighbourhoods.
///
/// Both modes apply the same interaction-range truncation and visit the
/// surviving points in the same (insertion) order, so they produce
/// **bit-identical** results; the property tests in `tests/proptest_scale.rs`
/// pin that equivalence.  `Indexed` is the default: O(n·k) per round via the
/// uniform-grid [`SpatialIndex`] instead of the O(n²) pairwise sweeps, which
/// is what keeps 64-AP / 512-client floors tractable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanMode {
    /// Uniform-grid spatial-index neighbourhood queries (default).
    Indexed,
    /// Reference all-pairs sweep, kept for equivalence testing.
    BruteForce,
}

/// Configuration of an end-to-end simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkSimConfig {
    /// Propagation environment.
    pub env: Environment,
    /// MAC discipline.
    pub mac: MacKind,
    /// Precoder used by every AP.
    pub precoder: PrecoderKind,
    /// Number of TXOP rounds simulated.
    pub rounds: usize,
    /// Number of antennas each client's packets are tagged with (MIDAS only).
    pub tag_width: usize,
    /// Random seed for channel realisations and access order.
    pub seed: u64,
    /// Radio interaction range (metres): a transmitter farther than this
    /// from a sensing antenna contributes nothing to carrier sensing, and a
    /// transmission whose antennas are all farther than this from a client
    /// contributes no interference.  `f64::INFINITY` (the constructor
    /// default, matching the paper-scale figures) disables truncation;
    /// enterprise scenarios set it from `Environment::interaction_range_m`.
    pub interaction_range_m: f64,
    /// Neighbourhood scan implementation (results are bit-identical).
    pub scan: ScanMode,
    /// Channel-realisation cache length in rounds: channels evolve (fresh
    /// fading draws) only every this-many rounds, covering the elapsed time
    /// in one step.  `1` (the constructor default) evolves every round and
    /// reproduces the legacy simulator bit for bit; larger values model a
    /// coherence interval longer than one TXOP and skip the evolution work
    /// on the cached rounds entirely.
    pub coherence_interval_rounds: usize,
    /// Contention semantics: the legacy binary carrier-sense graph
    /// (default, bit-identical to the pre-capture simulator) or the
    /// physical energy-detect + SINR-capture model (`crate::capture`).
    pub contention: ContentionModel,
    /// Small-scale fading engine.  `Legacy` (the constructor default) keeps
    /// every golden byte-identical; `Counter` switches evolution to
    /// stateless counter-keyed draws, enabling lazy (active-set) and
    /// parallel evolution — same Gauss–Markov statistics, different draw
    /// values (see [`FadingEngine`]).
    pub fading: FadingEngine,
    /// Worker threads for the `Counter` engine's evolve stage (`1`, the
    /// constructor default, stays on the calling thread).  Results are
    /// bit-identical at any thread count — draws are keyed, not sequenced —
    /// which `tests/proptest_fading.rs` pins.  Ignored under `Legacy`,
    /// whose pinned draw order is inherently serial.
    pub evolve_threads: usize,
    /// Long-horizon dynamics: client mobility and per-round roaming (see
    /// [`crate::dynamics`]).  `None` (the constructor default) is the
    /// static simulator, byte-identical to every pre-dynamics golden; any
    /// `Some` switches the per-AP channels to dense rows (every client has
    /// a row at every AP) so moving and roaming clients always have channel
    /// state wherever they end up.
    pub dynamics: Option<DynamicsSpec>,
}

impl NetworkSimConfig {
    /// The MIDAS system configuration (DAS topology expected).
    pub fn midas(env: Environment, seed: u64) -> Self {
        NetworkSimConfig {
            env,
            mac: MacKind::Midas,
            precoder: PrecoderKind::PowerBalanced,
            rounds: 20,
            tag_width: 2,
            seed,
            interaction_range_m: f64::INFINITY,
            scan: ScanMode::Indexed,
            contention: ContentionModel::Graph,
            coherence_interval_rounds: 1,
            fading: FadingEngine::Legacy,
            evolve_threads: 1,
            dynamics: None,
        }
    }

    /// The conventional 802.11ac CAS configuration.
    pub fn cas(env: Environment, seed: u64) -> Self {
        NetworkSimConfig {
            env,
            mac: MacKind::Cas,
            precoder: PrecoderKind::NaiveScaled,
            rounds: 20,
            tag_width: 2,
            seed,
            interaction_range_m: f64::INFINITY,
            scan: ScanMode::Indexed,
            contention: ContentionModel::Graph,
            coherence_interval_rounds: 1,
            fading: FadingEngine::Legacy,
            evolve_threads: 1,
            dynamics: None,
        }
    }

    /// Cell size the simulator's spatial indices use: the interaction range
    /// (radius-`r` queries then touch at most a 3×3 window).
    fn index_cell_m(&self) -> f64 {
        self.interaction_range_m
    }

    /// Whether the indexed scan actually runs.  With an infinite interaction
    /// range a neighbourhood query degenerates to "every point" — provably
    /// the same result, but the query/sort machinery would be pure overhead
    /// on the paper-scale figures — so the index is only engaged when a
    /// finite range gives it something to prune.
    fn use_index(&self) -> bool {
        self.scan == ScanMode::Indexed && self.interaction_range_m.is_finite()
    }
}

/// Result of simulating one topology.
#[derive(Debug, Clone, PartialEq)]
pub struct TopologyResult {
    /// Aggregate network capacity per round (bit/s/Hz summed over all
    /// concurrent streams).
    pub per_round_capacity: Vec<f64>,
    /// Number of concurrent streams per round.
    pub per_round_streams: Vec<usize>,
    /// Total service time credited to each client (µs), for fairness checks.
    pub per_client_airtime_us: Vec<f64>,
    /// Capacity delivered to each client, summed over all rounds
    /// (bit/s/Hz) — the per-client series whose pooled CDF the paper's
    /// Fig. 16 plots (a client far from its CAS array vs the same client
    /// near a distributed antenna).
    pub per_client_capacity: Vec<f64>,
    /// Capacity attributed to each AP, summed over all rounds (bit/s/Hz) —
    /// the per-AP diagnostic behind the Fig. 16 calibration work: it shows
    /// which APs in a large floor are starved by contention vs drowned in
    /// cross-AP interference.
    pub per_ap_capacity: Vec<f64>,
    /// Rounds in which each AP (any of its antennas) transmitted.
    pub per_ap_active_rounds: Vec<usize>,
}

impl TopologyResult {
    /// Mean aggregate network capacity over the rounds (the per-topology value
    /// whose CDF Figs. 15 and 16 plot); 0.0 for a zero-round run.
    pub fn mean_capacity(&self) -> f64 {
        if self.per_round_capacity.is_empty() {
            return 0.0;
        }
        Cdf::new(&self.per_round_capacity).mean()
    }

    /// Mean number of concurrent streams per round.
    pub fn mean_streams(&self) -> f64 {
        if self.per_round_streams.is_empty() {
            return 0.0;
        }
        self.per_round_streams.iter().sum::<usize>() as f64 / self.per_round_streams.len() as f64
    }

    /// Mean capacity attributed to each AP per round (bit/s/Hz) — zero for
    /// APs that never won channel access.
    pub fn per_ap_mean_capacity(&self) -> Vec<f64> {
        let rounds = self.per_round_capacity.len().max(1) as f64;
        self.per_ap_capacity.iter().map(|c| c / rounds).collect()
    }

    /// Mean capacity delivered to each client per round (bit/s/Hz) — zero
    /// for clients that were never served (or whose every frame collided).
    pub fn per_client_mean_capacity(&self) -> Vec<f64> {
        let rounds = self.per_round_capacity.len().max(1) as f64;
        self.per_client_capacity
            .iter()
            .map(|c| c / rounds)
            .collect()
    }

    /// Fraction of rounds each AP managed to transmit in; all zeros for a
    /// zero-round run.
    pub fn per_ap_duty_cycle(&self) -> Vec<f64> {
        let rounds = self.per_round_capacity.len().max(1) as f64;
        self.per_ap_active_rounds
            .iter()
            .map(|&r| r as f64 / rounds)
            .collect()
    }

    /// Jain fairness index of the per-client airtime.  Well-defined on any
    /// run: a zero-round (or never-served) run has uniformly zero airtime,
    /// which is perfectly fair, so it reports 1.0 rather than the 0/0 NaN
    /// the raw formula would produce.
    pub fn airtime_fairness(&self) -> f64 {
        let x = &self.per_client_airtime_us;
        let n = x.len() as f64;
        let sum: f64 = x.iter().sum();
        let sum_sq: f64 = x.iter().map(|v| v * v).sum();
        if sum_sq == 0.0 {
            return 1.0;
        }
        sum * sum / (n * sum_sq)
    }
}

/// Cumulative wall-clock spent in each stage of the round pipeline,
/// accumulated in the round workspace when stage profiling is enabled
/// (see [`NetworkSimulator::with_stage_profiling`]) and surfaced through
/// [`NetworkSimulator::stage_timings`] and [`Observer::on_finish`].
///
/// All-zero when profiling is off — the hot path then never reads a clock.
/// The gather of per-stream interferer neighbourhoods is attributed to
/// `evaluate_s` (it is the evaluate stage's discovery half, hoisted so the
/// counter fading engine knows which rows the round will read).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageTimings {
    /// Dynamics: mobility, large-scale refresh, roaming and the MAC-state
    /// rebuilds they trigger (0.0 when dynamics are off).
    pub dynamics_s: f64,
    /// Channel evolution (legacy eager sweep or counter lazy catch-up).
    pub evolve_s: f64,
    /// Carrier sensing against the antennas already on the air.
    pub sense_s: f64,
    /// Access-order shuffle, backlog queries, client selection, slot claims.
    pub select_s: f64,
    /// Per-slot precoding.
    pub precode_s: f64,
    /// Interferer gather + SINR/capacity computation.
    pub evaluate_s: f64,
    /// DRR fairness and traffic-queue bookkeeping.
    pub settle_s: f64,
    /// Rounds profiled into these totals.
    pub rounds: usize,
}

impl StageTimings {
    /// Total wall-clock across all stages.
    pub fn total_s(&self) -> f64 {
        self.dynamics_s
            + self.evolve_s
            + self.sense_s
            + self.select_s
            + self.precode_s
            + self.evaluate_s
            + self.settle_s
    }

    /// The stages as `(name, seconds)` pairs in pipeline order — the single
    /// place the stage names are spelled, so telemetry encoders (the
    /// capacity-planning service's JSONL stream, the pipeline bench's
    /// profile printout) cannot drift from the struct.
    pub fn stages(&self) -> [(&'static str, f64); 7] {
        [
            ("dynamics", self.dynamics_s),
            ("evolve", self.evolve_s),
            ("sense", self.sense_s),
            ("select", self.select_s),
            ("precode", self.precode_s),
            ("evaluate", self.evaluate_s),
            ("settle", self.settle_s),
        ]
    }
}

/// `Some(now)` when stage profiling is on — the pipeline's "maybe read the
/// clock" primitive.
#[inline]
fn tick(enabled: bool) -> Option<Instant> {
    // lint: allow(wall-clock) — stage profiling only: `tick` returns None (and the
    // hot path never reads a clock) unless `with_stage_profiling` was requested.
    enabled.then(Instant::now)
}

/// Seconds since a [`tick`], `0.0` when profiling was off.
#[inline]
fn secs_since(start: Option<Instant>) -> f64 {
    start.map_or(0.0, |s| s.elapsed().as_secs_f64())
}

/// One concurrent transmission inside a round.
///
/// Lives in the workspace's slot pool: the index buffers are cleared and
/// refilled round over round (retaining capacity), only the precoding matrix
/// is replaced wholesale (the precoder produces a fresh one).
struct ActiveTransmission {
    ap_id: usize,
    /// AP-local indices of the antennas used.
    antenna_idx: Vec<usize>,
    /// Topology-wide client indices served, aligned with precoder columns.
    clients: Vec<usize>,
    /// Precoding matrix (antennas × streams).
    v: CMat,
}

impl ActiveTransmission {
    fn empty() -> Self {
        ActiveTransmission {
            ap_id: 0,
            antenna_idx: Vec::new(),
            clients: Vec::new(),
            v: CMat::zeros(0, 0),
        }
    }
}

/// All per-round scratch of the staged round pipeline
/// (`evolve → backlog → sense → select → gather → fading → precode →
/// evaluate → settle`).
///
/// The simulator owns exactly one of these and threads it through every
/// stage; every buffer is cleared — never reallocated — between rounds, the
/// spatial indexes are emptied in place, and the global↔local client id maps
/// are prebuilt at construction time.  Once warm, a steady-state round
/// allocates nothing from this struct (the remaining per-round allocations
/// are the precoder's internal matrices and the small selection vectors the
/// `midas-mac` helpers return); `NetworkSimulator::workspace_heap_footprint_bytes`
/// exposes the retained capacity so tests can pin that it stops growing.
#[derive(Default)]
struct RoundWorkspace {
    /// AP access order, reshuffled every round (the backoff race).
    order: Vec<usize>,
    /// Positions of the antennas already on the air this round.
    active_antenna_positions: Vec<Point>,
    /// Persistent spatial mirror of `active_antenna_positions` supporting
    /// O(k) "who can I hear?" queries; ids are insertion-ordered, so folding
    /// over a neighbourhood reproduces the brute-force sweep bit-for-bit.
    /// `None` when the indexed scan is disabled.
    active_index: Option<SpatialIndex>,
    /// Persistent index over the round's transmitting antennas, for the
    /// cross-AP interferer lookup in the evaluate stage.
    interferer_index: Option<SpatialIndex>,
    /// Active-antenna id (insertion order) → index into the live
    /// transmissions, aligned with `interferer_index`.
    tx_of_antenna: Vec<usize>,
    /// Backlogged AP-local client ids (traffic-model query scratch).
    backlogged: Vec<usize>,
    /// Antennas of the AP currently planning that cleared carrier sense.
    available: Vec<usize>,
    /// Shared scratch for every spatial neighbourhood query of the round.
    neighbors: Vec<usize>,
    /// Deduped interfering-transmission ids for one stream.
    interferers: Vec<usize>,
    /// Transmission slot pool; `live` slots are current this round, the
    /// rest keep their buffers for later rounds.
    transmissions: Vec<ActiveTransmission>,
    live: usize,
    /// `(client, serving AP, capacity)` triples of the current round.
    capacities: Vec<(usize, usize, f64)>,
    /// AP ids transmitting this round (observer record scratch).
    transmitting_aps: Vec<usize>,
    /// Settle-stage scratch: served / unserved AP-local ids and the
    /// membership mask that replaces the old quadratic `contains` scan.
    served: Vec<usize>,
    unserved: Vec<usize>,
    served_mask: Vec<bool>,
    /// Per-AP global ids of the AP's own clients, in `clients_of` order —
    /// prebuilt so the round loop never re-filters the client list.
    own_clients: Vec<Vec<usize>>,
    /// Global client id → AP-local index within its owning AP.
    local_of: Vec<u32>,
    /// Dynamics-stage scratch: APs whose membership changed this step
    /// (DRR and tags rebuilt) and APs whose tag tables went stale because
    /// an own client moved (tags rebuilt).
    dirty_membership: Vec<bool>,
    dirty_tags: Vec<bool>,
    /// Flattened interfering-transmission ids of every stream this round,
    /// in stream order (gather stage output, evaluate stage input).
    stream_interferers: Vec<usize>,
    /// Per-stream end offsets into `stream_interferers`, in stream order.
    stream_bounds: Vec<usize>,
    /// `(ap, client)` channel rows the current round reads — the counter
    /// engine's active set (serving rows plus interferer rows).
    touched: Vec<(u32, u32)>,
    /// Gaussian-pair scratch of the serial counter evolve path.
    pairs: Vec<(f64, f64)>,
    /// Evolved-row staging of the parallel counter evolve path: each job
    /// writes its row into a disjoint segment, copied back serially.
    evolve_scratch: Vec<Complex>,
    /// Per-job segment offsets into `evolve_scratch` (prefix sums).
    job_offsets: Vec<usize>,
    /// Stage wall-clock totals (all-zero unless profiling is enabled).
    timings: StageTimings,
}

impl RoundWorkspace {
    /// Builds the workspace for a topology: id maps prebuilt, spatial
    /// indexes constructed (empty) when the indexed scan is active.
    fn for_simulator(topo: &Topology, config: &NetworkSimConfig) -> Self {
        let mut own_clients: Vec<Vec<usize>> = vec![Vec::new(); topo.aps.len()];
        let mut local_of = vec![0u32; topo.clients.len()];
        for c in &topo.clients {
            local_of[c.id] = own_clients[c.ap_id].len() as u32;
            own_clients[c.ap_id].push(c.id);
        }
        let make_index = || {
            config
                .use_index()
                .then(|| SpatialIndex::new(topo.region, config.index_cell_m()))
        };
        RoundWorkspace {
            active_index: make_index(),
            interferer_index: make_index(),
            own_clients,
            local_of,
            ..RoundWorkspace::default()
        }
    }

    /// Bytes of heap the workspace retains (capacities, not lengths).  The
    /// precoding matrices inside the slot pool are excluded: they are
    /// replaced — not reused — every round, so their size reflects the last
    /// round's stream counts rather than retained scratch.
    fn heap_footprint_bytes(&self) -> usize {
        use std::mem::size_of;
        let idx =
            |i: &Option<SpatialIndex>| i.as_ref().map_or(0, SpatialIndex::heap_footprint_bytes);
        self.order.capacity() * size_of::<usize>()
            + self.active_antenna_positions.capacity() * size_of::<Point>()
            + idx(&self.active_index)
            + idx(&self.interferer_index)
            + self.tx_of_antenna.capacity() * size_of::<usize>()
            + self.backlogged.capacity() * size_of::<usize>()
            + self.available.capacity() * size_of::<usize>()
            + self.neighbors.capacity() * size_of::<usize>()
            + self.interferers.capacity() * size_of::<usize>()
            + self.transmissions.capacity() * size_of::<ActiveTransmission>()
            + self
                .transmissions
                .iter()
                .map(|t| (t.antenna_idx.capacity() + t.clients.capacity()) * size_of::<usize>())
                .sum::<usize>()
            + self.capacities.capacity() * size_of::<(usize, usize, f64)>()
            + self.transmitting_aps.capacity() * size_of::<usize>()
            + self.served.capacity() * size_of::<usize>()
            + self.unserved.capacity() * size_of::<usize>()
            + self.served_mask.capacity() * size_of::<bool>()
            + self.own_clients.capacity() * size_of::<Vec<usize>>()
            + self
                .own_clients
                .iter()
                .map(|v| v.capacity() * size_of::<usize>())
                .sum::<usize>()
            + self.local_of.capacity() * size_of::<u32>()
            + self.dirty_membership.capacity() * size_of::<bool>()
            + self.dirty_tags.capacity() * size_of::<bool>()
            + self.stream_interferers.capacity() * size_of::<usize>()
            + self.stream_bounds.capacity() * size_of::<usize>()
            + self.touched.capacity() * size_of::<(u32, u32)>()
            + self.pairs.capacity() * size_of::<(f64, f64)>()
            + self.evolve_scratch.capacity() * size_of::<Complex>()
            + self.job_offsets.capacity() * size_of::<usize>()
    }
}

/// One AP's channel state, restricted to the clients in radio range.
///
/// With a finite interaction range an AP's signal is unreadable — and its
/// interference untruncated-zero — at clients beyond the cutoff, so there is
/// no reason to realise, store or evolve those rows: per-AP channel state
/// shrinks from O(all clients) to O(clients in range), which is what turns
/// the simulator's per-round cost from O(n²) into O(n·k) at enterprise
/// scale.  Rows are indexed by *global* client id through `row_of`.
struct ApChannel {
    ch: ChannelMatrix,
    /// Global client id → row of `ch`; `None` when the client is out of
    /// radio range of every antenna of this AP (its channel is never read).
    row_of: Vec<Option<u32>>,
    /// Counter engine only: per-row next evolution boundary (round number).
    /// A row whose entry is `b` has absorbed every keyed innovation for
    /// boundaries `< b`; lazy catch-up replays boundaries `b, b+interval, …`
    /// up to the current round before the row is read.  Starts at 0 (the
    /// initial realisation has seen no evolution) and is never consulted by
    /// the legacy engine.
    next_boundary: Vec<u64>,
}

impl ApChannel {
    fn row(&self, client: usize) -> usize {
        self.row_of[client].expect("channel row requested for an out-of-range client") as usize
    }

    /// Mean RSSI (dBm) of a global client from AP-local antenna `k`.
    fn mean_rssi_dbm(&self, client: usize, antenna: usize) -> f64 {
        self.ch.mean_rssi_dbm(self.row(client), antenna)
    }

    /// Sub-channel over global clients × AP-local antennas.
    fn select(&self, clients: &[usize], antennas: &[usize]) -> ChannelMatrix {
        let rows: Vec<usize> = clients.iter().map(|&c| self.row(c)).collect();
        self.ch.select(&rows, antennas)
    }
}

/// The end-to-end network simulator bound to one topology.
pub struct NetworkSimulator {
    topo: Topology,
    config: NetworkSimConfig,
    model: ChannelModel,
    graph: ContentionGraph,
    rng: SimRng,
    /// Per-AP channel to the clients within radio range (all clients when
    /// the interaction range is infinite).
    channels: Vec<ApChannel>,
    /// Per-AP fairness state over the AP's own clients (AP-local indices).
    drr: Vec<DrrScheduler>,
    /// Per-AP tag tables over the AP's own clients (AP-local indices).
    tags: Vec<TagTable>,
    /// Downlink workload: which clients are backlogged each round.
    /// Defaults to [`FullBuffer`], which reproduces the pre-traffic-model
    /// simulator byte for byte.
    traffic: Box<dyn TrafficModel>,
    /// The precoder every AP runs, constructed once at build time — the
    /// round loop used to re-box one per AP per round.
    precoder: Box<dyn Precoder + Send + Sync>,
    /// All per-round scratch, reused across rounds (and runs).
    workspace: RoundWorkspace,
    /// Test knob: rebuild `workspace` from scratch every round, to prove
    /// reuse is observationally free (see `proptest_workspace.rs`).
    fresh_workspace_per_round: bool,
    /// Test knob: under the counter engine, evolve *every* in-range row
    /// every round instead of only the rows the round reads.  Lazy
    /// evolution must be — and is pinned by `proptest_fading.rs` to be —
    /// bit-identical to this eager reference.
    eager_counter_evolve: bool,
    /// Collect per-stage wall-clock into the workspace's [`StageTimings`].
    profile_stages: bool,
    /// Long-horizon dynamics runtime state; `Some` iff
    /// `config.dynamics.is_some()`.
    dynamics: Option<DynamicsState>,
}

impl NetworkSimulator {
    /// Creates a simulator for a topology.
    pub fn new(topo: Topology, config: NetworkSimConfig) -> Self {
        let mut model = ChannelModel::new(config.env, config.seed);
        // For `ContentionModel::Graph` this is exactly the legacy
        // `ContentionGraph::new(env, seed ^ 0x5151)`; the physical model
        // swaps in its own threshold / sensing field here and nothing else
        // in the planning path changes.
        let graph = config
            .contention
            .sensing_graph(config.env, config.seed ^ 0x5151);
        let rng = SimRng::new(config.seed).fork(0xAC);

        let num_clients = topo.clients.len();
        let cutoff = config.interaction_range_m;
        // With dynamics on, every client gets a row at every AP: mobility
        // and roaming would otherwise need sparse row insertion as clients
        // wander into range of new APs mid-run.
        let dense_rows = config.dynamics.is_some();
        let client_index = (cutoff.is_finite() && !dense_rows).then(|| {
            SpatialIndex::from_points(
                topo.region,
                config.index_cell_m(),
                &topo.clients.iter().map(|c| c.position).collect::<Vec<_>>(),
            )
        });
        let channels: Vec<ApChannel> = topo
            .aps
            .iter()
            .map(|ap| {
                // Rows: every client within the interaction range of any of
                // this AP's antennas (their signal/interference is exactly
                // zero beyond it), plus the AP's own clients so scheduling
                // state is always defined.
                let mut visible: Vec<usize> = if let Some(index) = &client_index {
                    let mut v: Vec<usize> = ap
                        .antennas
                        .iter()
                        .flat_map(|a| index.neighbors_within(a, cutoff))
                        .collect();
                    v.extend(
                        topo.clients
                            .iter()
                            .filter(|c| c.ap_id == ap.ap_id)
                            .map(|c| c.id),
                    );
                    v.sort_unstable();
                    v.dedup();
                    v
                } else {
                    (0..num_clients).collect()
                };
                visible.shrink_to_fit();
                let positions: Vec<Point> =
                    visible.iter().map(|&c| topo.clients[c].position).collect();
                let ch = model.realize_positions(&ap.antennas, &positions);
                let mut row_of = vec![None; num_clients];
                for (row, &c) in visible.iter().enumerate() {
                    row_of[c] = Some(row as u32);
                }
                let next_boundary = vec![0; visible.len()];
                ApChannel {
                    ch,
                    row_of,
                    next_boundary,
                }
            })
            .collect();

        let mut drr = Vec::new();
        let mut tags = Vec::new();
        for ap in &topo.aps {
            let own_clients = topo.clients_of(ap.ap_id);
            drr.push(DrrScheduler::new(own_clients.len()));
            // Tagging is driven by mean RSSI of each own client from each antenna.
            let rssi: Vec<Vec<f64>> = own_clients
                .iter()
                .map(|c| {
                    (0..ap.num_antennas())
                        .map(|k| channels[ap.ap_id].mean_rssi_dbm(c.id, k))
                        .collect()
                })
                .collect();
            tags.push(TagTable::from_rssi(&rssi, config.tag_width));
        }

        let workspace = RoundWorkspace::for_simulator(&topo, &config);
        let dynamics = config
            .dynamics
            .map(|spec| DynamicsState::new(&spec, &topo, &config.env, config.seed));
        NetworkSimulator {
            topo,
            config,
            model,
            graph,
            rng,
            channels,
            drr,
            tags,
            traffic: Box::new(FullBuffer),
            precoder: make_precoder(config.precoder),
            workspace,
            fresh_workspace_per_round: false,
            eager_counter_evolve: false,
            profile_stages: false,
            dynamics,
        }
    }

    /// Test knob: discard and rebuild the round workspace every round
    /// instead of reusing it.  Results must be — and are pinned by property
    /// tests to be — bit-identical either way; this exists only so that
    /// equivalence is checkable.
    pub fn with_fresh_workspace_per_round(mut self) -> Self {
        self.fresh_workspace_per_round = true;
        self
    }

    /// Bytes of heap currently retained by the per-round workspace
    /// (capacities, not lengths).  Once the simulation is warm this stops
    /// growing: steady-state rounds allocate nothing from the workspace.
    pub fn workspace_heap_footprint_bytes(&self) -> usize {
        self.workspace.heap_footprint_bytes()
    }

    /// Test knob: with [`FadingEngine::Counter`], evolve every in-range
    /// channel row every round instead of only the rows the round reads.
    /// Results must be — and are pinned by property tests to be —
    /// bit-identical to the default lazy evolution; this exists only so
    /// that equivalence is checkable.  No effect under `Legacy` (which is
    /// always eager).
    pub fn with_eager_counter_evolve(mut self) -> Self {
        self.eager_counter_evolve = true;
        self
    }

    /// Enables per-stage wall-clock accumulation into [`StageTimings`]
    /// (read back via [`NetworkSimulator::stage_timings`], streamed to
    /// observers via [`Observer::on_finish`]).  Off by default so the hot
    /// path never reads a clock.
    pub fn with_stage_profiling(mut self) -> Self {
        self.profile_stages = true;
        self
    }

    /// Stage wall-clock totals accumulated so far (all-zero unless
    /// [`with_stage_profiling`](Self::with_stage_profiling) was used).
    pub fn stage_timings(&self) -> StageTimings {
        self.workspace.timings
    }

    /// Replaces the traffic model (default: [`FullBuffer`]) with a custom
    /// [`TrafficModel`] implementation.  Consumes and returns the simulator
    /// so it composes with construction.
    pub fn with_traffic(mut self, traffic: Box<dyn TrafficModel>) -> Self {
        self.traffic = traffic;
        self
    }

    /// Replaces the traffic model with a library workload described by
    /// `kind`, seeded from this simulation's seed.
    pub fn with_traffic_kind(self, kind: TrafficKind) -> Self {
        let seed = self.config.seed;
        self.with_traffic(kind.instantiate(seed))
    }

    /// The topology being simulated.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Runs the configured number of rounds and returns the aggregate result.
    ///
    /// Equivalent to streaming into an [`Accumulate`] observer — which is
    /// exactly what it does, so results are bit-identical to the historical
    /// accumulate-in-place loop.  For memory-bounded long-horizon runs,
    /// stream into a fixed-size observer via [`NetworkSimulator::run_with`]
    /// instead.
    pub fn run(&mut self) -> TopologyResult {
        let mut acc = Accumulate::new();
        self.run_with(&mut acc);
        acc.into_result()
    }

    /// Runs the configured number of rounds, streaming each round into
    /// `observer` instead of accumulating anything — peak memory is the
    /// observer's, flat in the round count for fixed-size observers.
    ///
    /// Each round is an explicit staged pipeline —
    /// `evolve → backlog → sense → select → gather → fading → precode →
    /// evaluate → settle` — threaded through the simulator's round
    /// workspace: `evolve_stage` advances the channels eagerly under the
    /// legacy fading engine, `plan_stage` covers backlog through client
    /// selection, `gather_stage` records each stream's interferers,
    /// `counter_fading_stage` lazily catches up exactly the channel rows
    /// the round reads under the counter engine, `precode_stage` computes
    /// the precoding matrices, `evaluate_stage` computes deliveries, and
    /// `settle_stage` updates fairness and queues.
    pub fn run_with(&mut self, observer: &mut dyn Observer) {
        observer.on_start(
            self.topo.clients.len(),
            self.topo.aps.len(),
            self.config.rounds,
        );
        // The workspace leaves `self` for the duration of the run so the
        // stages can borrow simulator state and scratch independently.
        let mut ws = std::mem::take(&mut self.workspace);
        if ws.own_clients.len() != self.topo.aps.len() {
            // Defensive: a default-constructed workspace (nothing prebuilt)
            // can only appear if a previous run panicked mid-flight.
            ws = RoundWorkspace::for_simulator(&self.topo, &self.config);
        }
        for round in 0..self.config.rounds {
            if self.fresh_workspace_per_round {
                let carried = ws.timings;
                ws = RoundWorkspace::for_simulator(&self.topo, &self.config);
                ws.timings = carried;
            }
            let t = tick(self.profile_stages);
            self.dynamics_stage(round, &mut ws);
            ws.timings.dynamics_s += secs_since(t);

            let t = tick(self.profile_stages);
            self.evolve_stage(round);
            ws.timings.evolve_s += secs_since(t);

            self.plan_stage(round, &mut ws);

            // The gather half of evaluation runs before precoding so the
            // counter engine knows every channel row the round will read
            // (serving rows and interferer rows alike) and can catch
            // exactly those up; it reads only positions, so hoisting it is
            // invisible to the legacy engine.
            let t = tick(self.profile_stages);
            self.gather_stage(&mut ws);
            ws.timings.evaluate_s += secs_since(t);

            let t = tick(self.profile_stages);
            self.counter_fading_stage(round, &mut ws);
            ws.timings.evolve_s += secs_since(t);

            let t = tick(self.profile_stages);
            self.precode_stage(&mut ws);
            ws.timings.precode_s += secs_since(t);

            let t = tick(self.profile_stages);
            self.evaluate_stage(&mut ws);
            ws.timings.evaluate_s += secs_since(t);

            ws.transmitting_aps.clear();
            ws.transmitting_aps
                .extend(ws.transmissions[..ws.live].iter().map(|t| t.ap_id));
            let total_streams: usize = ws.transmissions[..ws.live]
                .iter()
                .map(|t| t.clients.len())
                .sum();
            observer.on_round(&RoundRecord {
                round,
                deliveries: &ws.capacities,
                transmitting_aps: &ws.transmitting_aps,
                streams: total_streams,
            });
            // Cooperative cancellation at round granularity: an observer
            // (e.g. a deadline probe) can stop the run between rounds.
            // Observers that keep the default `false` see no change.
            if observer.stop_requested() {
                break;
            }

            let t = tick(self.profile_stages);
            self.settle_stage(&mut ws);
            ws.timings.settle_s += secs_since(t);
            if self.profile_stages {
                ws.timings.rounds += 1;
            }
        }
        observer.on_finish(&ws.timings);
        self.workspace = ws;
    }

    /// Pipeline stage 0 — dynamics: client mobility, large-scale channel
    /// refresh, roaming, and the MAC-state rebuilds those trigger.  A
    /// no-op (and never installed) when `config.dynamics` is `None`, so
    /// static runs are byte-identical to the pre-dynamics simulator.
    ///
    /// Per step (every `period_rounds`, never at round 0):
    /// 1. Mobility moves the mobile clients ([`DynamicsState::step_mobility`])
    ///    and each moved client's row in every AP channel is rescaled to
    ///    the large-scale gain at its new position
    ///    ([`ChannelModel::refresh_large_scale_row`]) — the fading phase is
    ///    preserved and no sequential RNG is consumed, so the static
    ///    pipeline's draw order is untouched.
    /// 2. Roaming re-associates clients with hysteresis
    ///    ([`DynamicsState::step_roaming`]).
    /// 3. The MAC-facing views are repaired: the workspace's ownership maps
    ///    are rebuilt when any client handed off, DRR restarts for APs whose
    ///    membership changed (a handoff is a fresh association), and tag
    ///    tables are rebuilt for any AP whose own-client RSSI picture moved.
    ///
    /// [`ChannelModel::refresh_large_scale_row`]: midas_channel::ChannelModel::refresh_large_scale_row
    fn dynamics_stage(&mut self, round: usize, ws: &mut RoundWorkspace) {
        let Some(spec) = self.config.dynamics else {
            return;
        };
        let Some(state) = self.dynamics.as_mut() else {
            return;
        };
        let period = spec.period_rounds.max(1);
        if round == 0 || !round.is_multiple_of(period) {
            return;
        }

        // 1. Move, then rescale the moved clients' gains everywhere.
        state.step_mobility(&spec, &mut self.topo);
        for &cid in state.moved() {
            let p = self.topo.clients[cid].position;
            for (ap_id, apch) in self.channels.iter_mut().enumerate() {
                if let Some(row) = apch.row_of[cid] {
                    self.model.refresh_large_scale_row(
                        &mut apch.ch,
                        row as usize,
                        &self.topo.aps[ap_id].antennas,
                        &p,
                    );
                }
            }
        }

        // 2. Roam.
        state.step_roaming(&spec, &mut self.topo, &self.config.env);

        // 3. Repair the MAC-facing views of whatever changed.
        let num_aps = self.topo.aps.len();
        ws.dirty_membership.clear();
        ws.dirty_membership.resize(num_aps, false);
        ws.dirty_tags.clear();
        ws.dirty_tags.resize(num_aps, false);
        let mut any_handoff = false;
        for cid in state.handed_off(&self.topo) {
            ws.dirty_membership[state.previous_ap(cid)] = true;
            ws.dirty_membership[self.topo.clients[cid].ap_id] = true;
            any_handoff = true;
        }
        for &cid in state.moved() {
            ws.dirty_tags[self.topo.clients[cid].ap_id] = true;
        }
        if any_handoff {
            for v in &mut ws.own_clients {
                v.clear();
            }
            for c in &self.topo.clients {
                ws.local_of[c.id] = ws.own_clients[c.ap_id].len() as u32;
                ws.own_clients[c.ap_id].push(c.id);
            }
        }
        for ap_id in 0..num_aps {
            let membership = ws.dirty_membership[ap_id];
            if membership {
                self.drr[ap_id] = DrrScheduler::new(ws.own_clients[ap_id].len());
            }
            if membership || ws.dirty_tags[ap_id] {
                let ap = &self.topo.aps[ap_id];
                let ch = &self.channels[ap_id];
                let rssi: Vec<Vec<f64>> = ws.own_clients[ap_id]
                    .iter()
                    .map(|&c| {
                        (0..ap.num_antennas())
                            .map(|k| ch.mean_rssi_dbm(c, k))
                            .collect()
                    })
                    .collect();
                self.tags[ap_id] = TagTable::from_rssi(&rssi, self.config.tag_width);
            }
        }
    }

    /// `(total client moves, total handoffs)` performed by the dynamics
    /// layer so far; `None` when dynamics are off.
    pub fn dynamics_stats(&self) -> Option<(usize, usize)> {
        self.dynamics
            .as_ref()
            .map(|d| (d.moves_total(), d.handoffs_total()))
    }

    /// Bytes of heap the dynamics layer retains (0 when dynamics are off);
    /// stable once warm, which the long-horizon footprint test pins.
    pub fn dynamics_heap_footprint_bytes(&self) -> usize {
        self.dynamics
            .as_ref()
            .map_or(0, DynamicsState::heap_footprint_bytes)
    }

    /// Pipeline stage 1 — legacy channel evolution.  Channels advance one
    /// coherence interval (default: every round, one TXOP) in place; rounds
    /// inside the interval reuse the cached realisation.  The counter
    /// engine evolves later in the round — lazily, once the plan and gather
    /// stages have determined which rows the round reads (see
    /// [`counter_fading_stage`](Self::counter_fading_stage)).
    // lint: no_alloc — steady-state stage: scratch lives in RoundWorkspace (PR 6 footprint pin)
    fn evolve_stage(&mut self, round: usize) {
        if self.config.fading != FadingEngine::Legacy {
            return;
        }
        let interval = self.config.coherence_interval_rounds.max(1);
        if !round.is_multiple_of(interval) {
            return;
        }
        let delay_s = interval as f64 * DEFAULT_TXOP_US as f64 * 1e-6;
        for apch in &mut self.channels {
            self.model.evolve_in_place(&mut apch.ch, delay_s);
        }
    }

    /// Pipeline stages 2–4 — backlog, sense, select: decides who transmits
    /// this round, filling the workspace's transmission slots with the
    /// chosen clients and antennas.  Precoding happens in a later stage
    /// ([`precode_stage`](Self::precode_stage)) so the counter fading
    /// engine can bring the selected rows up to date in between; sensing
    /// and selection never read small-scale fading (tags and DRR run on
    /// large-scale RSSI), so the split is invisible to the legacy engine.
    // lint: no_alloc — steady-state stage: scratch lives in RoundWorkspace (PR 6 footprint pin)
    fn plan_stage(&mut self, round: usize, ws: &mut RoundWorkspace) {
        let num_aps = self.topo.aps.len();
        let cutoff = self.config.interaction_range_m;
        let profile = self.profile_stages;
        let plan_start = tick(profile);
        let mut sense_s = 0.0;

        // Split the workspace into per-field borrows so the sensing closure
        // (reading active antennas) and the slot writes (mutating buffers)
        // coexist without aliasing.
        let RoundWorkspace {
            order,
            active_antenna_positions,
            active_index,
            backlogged,
            available,
            neighbors,
            transmissions,
            live,
            own_clients,
            timings,
            ..
        } = ws;

        order.clear();
        order.extend(0..num_aps);
        self.rng.shuffle(order);

        active_antenna_positions.clear();
        if let Some(index) = active_index.as_mut() {
            index.clear();
        }
        *live = 0;

        for &ap_id in order.iter() {
            let ap = &self.topo.aps[ap_id];
            let own = &own_clients[ap_id];
            if own.is_empty() {
                continue;
            }
            // Backlog: which of this AP's clients have downlink data this
            // round?  Full-buffer answers "all of them" without touching any
            // RNG, so the legacy figures are unchanged; lighter workloads
            // thin the candidate set (an AP with nothing queued stays
            // silent).
            self.traffic
                .backlogged_into(ap_id, own.len(), round, backlogged);
            if backlogged.is_empty() {
                continue;
            }

            // Sense: energy-detection carrier sensing against the
            // transmitters already on the air, truncated at the interaction
            // range.  The contention model only changes which graph
            // (threshold / sensing field) `self.graph` was built from — the
            // sensing arithmetic is shared, so both models and both scan
            // modes visit the surviving antennas in the same order.
            let graph = &self.graph;
            let positions = &*active_antenna_positions;
            let index_ref = active_index.as_ref();
            let senses = |antenna: &Point, scratch: &mut Vec<usize>| -> bool {
                match index_ref {
                    None => graph.senses_any_within(antenna, positions, cutoff),
                    Some(index) => {
                        index.neighbors_within_into(antenna, cutoff, scratch);
                        graph.senses_aggregate(antenna, scratch.iter().map(|&id| &positions[id]))
                    }
                }
            };

            // Which antennas may transmit given what is already on the air?
            let t_sense = tick(profile);
            available.clear();
            match self.config.mac {
                MacKind::Midas => available.extend(
                    (0..ap.num_antennas()).filter(|&k| !senses(&ap.antennas[k], neighbors)),
                ),
                MacKind::Cas => {
                    let busy = ap.antennas.iter().any(|a| senses(a, neighbors));
                    if !busy {
                        available.extend(0..ap.num_antennas());
                    }
                }
            }
            sense_s += secs_since(t_sense);
            if available.is_empty() {
                continue;
            }

            // Select.
            let local_selected: Vec<usize> = match self.config.mac {
                MacKind::Midas => {
                    let eligible = self.tags[ap_id].filter_clients(backlogged, available);
                    select_clients_midas(available, &eligible, &self.tags[ap_id], &self.drr[ap_id])
                }
                MacKind::Cas => select_clients_cas(available.len(), backlogged, &self.drr[ap_id]),
            };
            if local_selected.is_empty() {
                continue;
            }

            // Claim a transmission slot (buffers retained from prior rounds);
            // its stale precoding matrix is overwritten by the precode stage.
            if transmissions.len() == *live {
                transmissions.push(ActiveTransmission::empty());
            }
            let slot = &mut transmissions[*live];
            slot.ap_id = ap_id;
            slot.clients.clear();
            slot.clients.extend(local_selected.iter().map(|&l| own[l]));
            slot.antenna_idx.clear();
            slot.antenna_idx.extend_from_slice(available);

            for &k in slot.antenna_idx.iter() {
                active_antenna_positions.push(ap.antennas[k]);
                if let Some(index) = active_index.as_mut() {
                    index.insert(ap.antennas[k]);
                }
            }
            *live += 1;
        }

        if profile {
            timings.sense_s += sense_s;
            timings.select_s += secs_since(plan_start) - sense_s;
        }
    }

    /// Pipeline stage 5 — gather: discovers each stream's interfering
    /// transmissions (position-only neighbourhood queries) and stores them
    /// in the workspace for the evaluate stage to replay.
    ///
    /// Hoisted out of evaluation so the full set of channel rows the round
    /// reads — serving rows *and* interferer rows — is known before any
    /// fading value is consumed; that set is exactly what the counter
    /// engine's lazy evolution catches up.  A concurrent transmission only
    /// interferes with a client when at least one of its transmitting
    /// antennas is within the interaction range; both scan modes apply that
    /// rule and visit interferers in transmission order, so the stored
    /// lists are bit-identical between them.
    // lint: no_alloc — steady-state stage: scratch lives in RoundWorkspace (PR 6 footprint pin)
    fn gather_stage(&self, ws: &mut RoundWorkspace) {
        let cutoff = self.config.interaction_range_m;
        let RoundWorkspace {
            interferer_index,
            tx_of_antenna,
            neighbors,
            interferers,
            transmissions,
            live,
            stream_interferers,
            stream_bounds,
            ..
        } = ws;
        let transmissions = &transmissions[..*live];

        // Map every active antenna back to its transmission for the indexed
        // interferer lookup.
        if self.config.use_index() {
            let index = interferer_index.get_or_insert_with(|| {
                SpatialIndex::new(self.topo.region, self.config.index_cell_m())
            });
            index.clear();
            tx_of_antenna.clear();
            for (tx_idx, t) in transmissions.iter().enumerate() {
                for &k in &t.antenna_idx {
                    index.insert(self.topo.aps[t.ap_id].antennas[k]);
                    tx_of_antenna.push(tx_idx);
                }
            }
        }

        stream_interferers.clear();
        stream_bounds.clear();
        for t in transmissions.iter() {
            for &client in t.clients.iter() {
                let client_pos = &self.topo.clients[client].position;
                interferers.clear();
                match interferer_index {
                    Some(index) => {
                        index.neighbors_within_into(client_pos, cutoff, neighbors);
                        interferers.extend(
                            neighbors
                                .iter()
                                .map(|&antenna_id| tx_of_antenna[antenna_id]),
                        );
                        interferers.dedup(); // antenna ids are sorted, so tx ids are too
                    }
                    None => interferers.extend((0..transmissions.len()).filter(|&o| {
                        transmissions[o].antenna_idx.iter().any(|&k| {
                            self.topo.aps[transmissions[o].ap_id].antennas[k].distance(client_pos)
                                <= cutoff
                        })
                    })),
                }
                stream_interferers.extend_from_slice(interferers);
                stream_bounds.push(stream_interferers.len());
            }
        }
    }

    /// Pipeline stage 6 — counter-engine fading: brings exactly the channel
    /// rows this round reads up to the current evolution boundary.
    ///
    /// The active set is the union of each live slot's serving rows and
    /// each stream's interferer rows (from the gather stage): those — and
    /// only those — feed the precode and evaluate stages.  Rows not in the
    /// set are left behind; their `next_boundary` bookmark lets a later
    /// round replay the identical keyed innovations they skipped, boundary
    /// by boundary, so lazy evolution is bit-identical to eager (pinned by
    /// `proptest_fading.rs`).  Because every row's update is a pure
    /// function of `(key, prior state)`, the catch-up shards freely across
    /// `config.evolve_threads` workers: phase A computes evolved rows into
    /// disjoint scratch segments in parallel, phase B copies them back
    /// serially — no draw order exists to violate.
    // lint: no_alloc — steady-state stage: scratch lives in RoundWorkspace (PR 6 footprint pin)
    fn counter_fading_stage(&mut self, round: usize, ws: &mut RoundWorkspace) {
        if self.config.fading != FadingEngine::Counter {
            return;
        }
        let interval = self.config.coherence_interval_rounds.max(1) as u64;
        // The last evolution boundary at or before this round; every row
        // read this round must have absorbed the innovations keyed by
        // boundaries 0, interval, …, current_boundary (matching the legacy
        // engine's cadence of evolving on rounds divisible by the interval).
        let current_boundary = (round as u64 / interval) * interval;
        let delay_s = interval as f64 * DEFAULT_TXOP_US as f64 * 1e-6;
        let rho = self.model.step_correlation(delay_s);

        let RoundWorkspace {
            transmissions,
            live,
            stream_interferers,
            stream_bounds,
            touched,
            pairs,
            evolve_scratch,
            job_offsets,
            ..
        } = ws;
        let transmissions = &transmissions[..*live];

        touched.clear();
        if self.eager_counter_evolve {
            // Test reference: every in-range row of every AP, every round.
            for (ap_id, apch) in self.channels.iter().enumerate() {
                for (client, row) in apch.row_of.iter().enumerate() {
                    if row.is_some() {
                        touched.push((ap_id as u32, client as u32));
                    }
                }
            }
        } else {
            // Serving rows: read by precode and by the evaluate stage's
            // signal/intra-interference terms.
            for t in transmissions.iter() {
                for &client in t.clients.iter() {
                    touched.push((t.ap_id as u32, client as u32));
                }
            }
            // Interferer rows: each served client's row in every other
            // transmission within radio range of it.
            let mut stream_no = 0;
            for (tx_idx, t) in transmissions.iter().enumerate() {
                for &client in t.clients.iter() {
                    let lo = if stream_no == 0 {
                        0
                    } else {
                        stream_bounds[stream_no - 1]
                    };
                    let hi = stream_bounds[stream_no];
                    stream_no += 1;
                    for &o in &stream_interferers[lo..hi] {
                        if o != tx_idx {
                            touched.push((transmissions[o].ap_id as u32, client as u32));
                        }
                    }
                }
            }
        }
        touched.sort_unstable();
        touched.dedup();

        let threads = self.config.evolve_threads.max(1).min(touched.len().max(1));
        if threads <= 1 {
            for &(ap, client) in touched.iter() {
                let apch = &mut self.channels[ap as usize];
                let row = apch.row_of[client as usize]
                    .expect("touched row must be in range of its AP")
                    as usize;
                let mut boundary = apch.next_boundary[row];
                if boundary > current_boundary {
                    continue; // up to date within this coherence interval
                }
                let h_row = apch.ch.h.row_mut(row);
                let g_row = apch.ch.large_scale.row(row);
                while boundary <= current_boundary {
                    self.model.evolve_row_counter(
                        h_row,
                        g_row,
                        rho,
                        ap as u64,
                        client as u64,
                        boundary,
                        pairs,
                    );
                    boundary += interval;
                }
                apch.next_boundary[row] = boundary;
            }
            return;
        }

        // Parallel catch-up.  Phase A: each worker evolves a contiguous
        // chunk of the (sorted, deduped — hence disjoint) touched rows into
        // its disjoint slice of one scratch buffer, reading the channel
        // state immutably.
        job_offsets.clear();
        job_offsets.push(0);
        let mut total = 0usize;
        for &(ap, _) in touched.iter() {
            total += self.channels[ap as usize].ch.num_antennas();
            job_offsets.push(total);
        }
        evolve_scratch.clear();
        evolve_scratch.resize(total, Complex::ZERO);

        let channels = &self.channels;
        let model = &self.model;
        let jobs = &touched[..];
        let per_thread = jobs.len().div_ceil(threads);
        std::thread::scope(|scope| {
            let mut rest = evolve_scratch.as_mut_slice();
            let mut job_lo = 0usize;
            for _ in 0..threads {
                let job_hi = (job_lo + per_thread).min(jobs.len());
                if job_hi <= job_lo {
                    break;
                }
                let base = job_offsets[job_lo];
                let elems = job_offsets[job_hi] - base;
                let (mine, tail) = rest.split_at_mut(elems);
                rest = tail;
                let my_jobs = &jobs[job_lo..job_hi];
                let my_offsets = &job_offsets[job_lo..=job_hi];
                scope.spawn(move || {
                    // lint: allow(no-alloc-stage) — per-worker Box–Muller carry scratch, local to the
                    // parallel-evolve thread scope; only allocated when evolve_threads > 1 asks for
                    // intra-trial parallelism, and sized O(1) (one cached Gaussian pair per worker).
                    let mut pairs = Vec::new();
                    for (i, &(ap, client)) in my_jobs.iter().enumerate() {
                        let apch = &channels[ap as usize];
                        let row = apch.row_of[client as usize]
                            .expect("touched row must be in range of its AP")
                            as usize;
                        let seg = &mut mine[my_offsets[i] - base..my_offsets[i + 1] - base];
                        seg.copy_from_slice(apch.ch.h.row(row));
                        let g_row = apch.ch.large_scale.row(row);
                        let mut boundary = apch.next_boundary[row];
                        while boundary <= current_boundary {
                            model.evolve_row_counter(
                                seg,
                                g_row,
                                rho,
                                ap as u64,
                                client as u64,
                                boundary,
                                &mut pairs,
                            );
                            boundary += interval;
                        }
                    }
                });
                job_lo = job_hi;
            }
        });

        // Phase B: serial copy-back + bookkeeping.
        for (i, &(ap, client)) in touched.iter().enumerate() {
            let apch = &mut self.channels[ap as usize];
            let row = apch.row_of[client as usize].expect("touched row must be in range of its AP")
                as usize;
            if apch.next_boundary[row] > current_boundary {
                continue; // was already up to date; scratch holds an unchanged copy
            }
            apch.ch
                .h
                .row_mut(row)
                .copy_from_slice(&evolve_scratch[job_offsets[i]..job_offsets[i + 1]]);
            apch.next_boundary[row] = current_boundary + interval;
        }
    }

    /// Pipeline stage 7 — precode: computes each live slot's precoding
    /// matrix over the (selected clients × available antennas) channel.
    /// Runs after the fading stage so it reads the current round's channel
    /// state; the precoder is pure (no RNG), so extracting it from the plan
    /// loop leaves the legacy engine's outputs untouched.
    // lint: no_alloc — steady-state stage: scratch lives in RoundWorkspace (PR 6 footprint pin)
    fn precode_stage(&self, ws: &mut RoundWorkspace) {
        let RoundWorkspace {
            transmissions,
            live,
            ..
        } = ws;
        for slot in &mut transmissions[..*live] {
            let sub = self.channels[slot.ap_id].select(&slot.clients, &slot.antenna_idx);
            let precoding = self.precoder.precode(&sub.h, sub.tx_power_mw, sub.noise_mw);
            slot.v = precoding.v;
        }
    }

    /// Pipeline stage 8 — evaluate: computes per-client capacities including
    /// cross-AP interference, filling `ws.capacities` with
    /// `(client, serving AP, capacity)` triples.  Interferers come from the
    /// lists the gather stage stored, replayed in stream order.
    // lint: no_alloc — steady-state stage: scratch lives in RoundWorkspace (PR 6 footprint pin)
    fn evaluate_stage(&self, ws: &mut RoundWorkspace) {
        let RoundWorkspace {
            transmissions,
            live,
            capacities,
            stream_interferers,
            stream_bounds,
            ..
        } = ws;
        let transmissions = &transmissions[..*live];

        capacities.clear();
        let mut stream_no = 0;
        for (tx_idx, t) in transmissions.iter().enumerate() {
            let ch = &self.channels[t.ap_id];
            for (stream_idx, &client) in t.clients.iter().enumerate() {
                // The client's channel row towards every antenna of the
                // serving AP, hoisted once per stream instead of one
                // row-lookup per (antenna, stream) pair.
                let h_row = ch.ch.h.row(ch.row(client));
                // Desired + intra-AP interference from this transmission.
                // Intra-AP leakage is tracked separately from cross-AP
                // interference: the serving AP's precoder knows about the
                // former, so only the former enters the *expected* SINR the
                // physical model's rate adaptation sees.
                let mut signal = 0.0;
                let mut intra_interference = 0.0;
                for (other_stream, _) in t.clients.iter().enumerate() {
                    let mut amp = Complex::ZERO;
                    for (row, &k) in t.antenna_idx.iter().enumerate() {
                        amp += h_row[k] * t.v.get(row, other_stream);
                    }
                    if other_stream == stream_idx {
                        signal = amp.norm_sqr();
                    } else {
                        intra_interference += amp.norm_sqr();
                    }
                }
                let mut interference = intra_interference;
                // Cross-AP interference from the concurrent transmissions in
                // radio range of this client, in transmission order.
                let lo = if stream_no == 0 {
                    0
                } else {
                    stream_bounds[stream_no - 1]
                };
                let hi = stream_bounds[stream_no];
                stream_no += 1;
                for &o in &stream_interferers[lo..hi] {
                    if o == tx_idx {
                        continue;
                    }
                    let other = &transmissions[o];
                    let och = &self.channels[other.ap_id];
                    let oh_row = och.ch.h.row(och.row(client));
                    for other_stream in 0..other.clients.len() {
                        let mut amp = Complex::ZERO;
                        for (row, &k) in other.antenna_idx.iter().enumerate() {
                            amp += oh_row[k] * other.v.get(row, other_stream);
                        }
                        interference += amp.norm_sqr();
                    }
                }
                let noise = ch.ch.noise_mw;
                let sinr = signal / (noise + interference);
                // Graph model: every transmitted stream earns its Shannon
                // capacity.  Physical model: the serving AP's rate
                // adaptation picked an MCS from the SINR its precoding
                // predicts (intra-AP only — it cannot foresee who else won
                // the round), and the receiver only captures the frame when
                // the realized SINR still clears that MCS's threshold;
                // otherwise the collision costs the whole frame.
                let capacity = match self.config.contention.physical() {
                    Some(p) => {
                        let expected = signal / (noise + intra_interference);
                        if p.frame_captured_linear(expected, sinr) {
                            shannon_capacity_bps_hz(sinr)
                        } else {
                            0.0
                        }
                    }
                    None => shannon_capacity_bps_hz(sinr),
                };
                capacities.push((client, t.ap_id, capacity));
            }
        }
    }

    /// Pipeline stage 7 — settle: per-AP fairness (DRR) and traffic-queue
    /// bookkeeping for the round that just ran.
    ///
    /// Served clients are mapped from global ids back to AP-local ids through
    /// the workspace's prebuilt `local_of` table, and the unserved complement
    /// is read off a reusable bitmask — O(clients) instead of the former
    /// O(clients²) `contains` sweep.
    // lint: no_alloc — steady-state stage: scratch lives in RoundWorkspace (PR 6 footprint pin)
    fn settle_stage(&mut self, ws: &mut RoundWorkspace) {
        for t in &ws.transmissions[..ws.live] {
            let n_local = ws.own_clients[t.ap_id].len();
            ws.served.clear();
            ws.served
                .extend(t.clients.iter().map(|&g| ws.local_of[g] as usize));
            ws.served_mask.clear();
            ws.served_mask.resize(n_local, false);
            for &l in &ws.served {
                ws.served_mask[l] = true;
            }
            ws.unserved.clear();
            ws.unserved
                .extend((0..n_local).filter(|&l| !ws.served_mask[l]));
            self.drr[t.ap_id].update_after_txop(&ws.served, &ws.unserved, DEFAULT_TXOP_US);
            for &l in &ws.served {
                self.traffic.served(t.ap_id, l);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deployment::PairedTopology;

    fn three_ap_pair(seed: u64) -> PairedTopology {
        let mut rng = SimRng::new(seed);
        let cfg = crate::deployment::paper_das_config(&Environment::office_a(), 4, 4);
        PairedTopology::three_ap(&cfg, &mut rng)
    }

    #[test]
    fn stage_timings_stages_cover_every_field_in_pipeline_order() {
        let timings = StageTimings {
            dynamics_s: 0.5,
            evolve_s: 1.0,
            sense_s: 2.0,
            select_s: 3.0,
            precode_s: 4.0,
            evaluate_s: 5.0,
            settle_s: 6.0,
            rounds: 7,
        };
        let stages = timings.stages();
        assert_eq!(
            stages.map(|(name, _)| name),
            ["dynamics", "evolve", "sense", "select", "precode", "evaluate", "settle"]
        );
        // Summing the pairs reproduces total_s: no field is missing or
        // double-counted.
        let sum: f64 = stages.iter().map(|(_, s)| s).sum();
        assert_eq!(sum, timings.total_s());
    }

    #[test]
    fn simulation_produces_finite_positive_capacity() {
        let pair = three_ap_pair(1);
        let env = Environment::office_a();
        let mut sim = NetworkSimulator::new(pair.das, NetworkSimConfig::midas(env, 1));
        let result = sim.run();
        assert_eq!(result.per_round_capacity.len(), 20);
        assert!(result.mean_capacity() > 0.0);
        assert!(result.mean_capacity().is_finite());
        assert!(result.mean_streams() >= 1.0);
    }

    #[test]
    fn cas_never_exceeds_one_active_ap_in_a_shared_domain() {
        let pair = three_ap_pair(2);
        let env = Environment::office_a();
        let mut sim = NetworkSimulator::new(pair.cas, NetworkSimConfig::cas(env, 2));
        let result = sim.run();
        // All three CAS APs overhear each other, so at most 4 streams per round.
        for &s in &result.per_round_streams {
            assert!(s <= 4, "round had {s} concurrent streams under CAS");
        }
    }

    #[test]
    fn midas_achieves_more_concurrent_streams_than_cas() {
        let env = Environment::office_a();
        let mut das_streams = 0.0;
        let mut cas_streams = 0.0;
        for seed in 0..3 {
            let pair = three_ap_pair(10 + seed);
            let mut das_sim = NetworkSimulator::new(pair.das, NetworkSimConfig::midas(env, seed));
            let mut cas_sim = NetworkSimulator::new(pair.cas, NetworkSimConfig::cas(env, seed));
            das_streams += das_sim.run().mean_streams();
            cas_streams += cas_sim.run().mean_streams();
        }
        assert!(
            das_streams > cas_streams,
            "MIDAS mean streams {das_streams} should exceed CAS {cas_streams}"
        );
    }

    #[test]
    fn midas_outperforms_cas_end_to_end() {
        // Fig. 15's qualitative claim at test scale: MIDAS clearly beats CAS.
        let env = Environment::office_a();
        let mut das_capacity = 0.0;
        let mut cas_capacity = 0.0;
        for seed in 0..3 {
            let pair = three_ap_pair(20 + seed);
            let mut das_sim = NetworkSimulator::new(pair.das, NetworkSimConfig::midas(env, seed));
            let mut cas_sim = NetworkSimulator::new(pair.cas, NetworkSimConfig::cas(env, seed));
            das_capacity += das_sim.run().mean_capacity();
            cas_capacity += cas_sim.run().mean_capacity();
        }
        assert!(
            das_capacity > cas_capacity,
            "MIDAS capacity {das_capacity:.1} should exceed CAS {cas_capacity:.1}"
        );
    }

    #[test]
    fn airtime_fairness_is_reasonable_under_full_buffer_traffic() {
        let pair = three_ap_pair(30);
        let env = Environment::office_a();
        let mut sim = NetworkSimulator::new(pair.das, NetworkSimConfig::midas(env, 30));
        let result = sim.run();
        let fairness = result.airtime_fairness();
        assert!(
            fairness > 0.5,
            "Jain index {fairness} too low: {:?}",
            result.per_client_airtime_us
        );
    }
}
