//! Round-based end-to-end network simulator (Figs. 15 and 16).
//!
//! The simulator plays out full-buffer downlink traffic in a multi-AP network
//! over a sequence of TXOP rounds.  Within a round the APs attempt channel
//! access in a random order (standing in for the backoff race); an AP — or in
//! MIDAS, each of its distributed antennas — joins the round only if it does
//! not carrier-sense a transmitter that already won the round.  Winning APs
//! select clients (MIDAS: virtual packet tagging + antenna-specific DRR; CAS:
//! fairness-only), precode (MIDAS: power-balanced; CAS: naïve global scaling)
//! and the resulting per-client SINRs include *cross-AP interference* from
//! every other concurrent transmission, so more spatial reuse only pays off
//! when the interference geometry allows it — exactly the trade-off §5.4
//! discusses.

use crate::contention::ContentionGraph;
use crate::metrics::Cdf;
use midas_channel::geometry::Point;
use midas_channel::topology::Topology;
use midas_channel::{ChannelMatrix, ChannelModel, Environment, SimRng};
use midas_linalg::CMat;
use midas_mac::client_select::{select_clients_cas, select_clients_midas};
use midas_mac::drr::DrrScheduler;
use midas_mac::tagging::TagTable;
use midas_mac::timing::DEFAULT_TXOP_US;
use midas_phy::capacity::shannon_capacity_bps_hz;
use midas_phy::precoder::{make_precoder, PrecoderKind};

/// Which MAC discipline the APs run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MacKind {
    /// MIDAS: per-antenna carrier sensing, packet tagging, DRR per antenna.
    Midas,
    /// CAS baseline: single channel state, all antennas, fairness-only selection.
    Cas,
}

/// Configuration of an end-to-end simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkSimConfig {
    /// Propagation environment.
    pub env: Environment,
    /// MAC discipline.
    pub mac: MacKind,
    /// Precoder used by every AP.
    pub precoder: PrecoderKind,
    /// Number of TXOP rounds simulated.
    pub rounds: usize,
    /// Number of antennas each client's packets are tagged with (MIDAS only).
    pub tag_width: usize,
    /// Random seed for channel realisations and access order.
    pub seed: u64,
}

impl NetworkSimConfig {
    /// The MIDAS system configuration (DAS topology expected).
    pub fn midas(env: Environment, seed: u64) -> Self {
        NetworkSimConfig {
            env,
            mac: MacKind::Midas,
            precoder: PrecoderKind::PowerBalanced,
            rounds: 20,
            tag_width: 2,
            seed,
        }
    }

    /// The conventional 802.11ac CAS configuration.
    pub fn cas(env: Environment, seed: u64) -> Self {
        NetworkSimConfig {
            env,
            mac: MacKind::Cas,
            precoder: PrecoderKind::NaiveScaled,
            rounds: 20,
            tag_width: 2,
            seed,
        }
    }
}

/// Result of simulating one topology.
#[derive(Debug, Clone, PartialEq)]
pub struct TopologyResult {
    /// Aggregate network capacity per round (bit/s/Hz summed over all
    /// concurrent streams).
    pub per_round_capacity: Vec<f64>,
    /// Number of concurrent streams per round.
    pub per_round_streams: Vec<usize>,
    /// Total service time credited to each client (µs), for fairness checks.
    pub per_client_airtime_us: Vec<f64>,
}

impl TopologyResult {
    /// Mean aggregate network capacity over the rounds (the per-topology value
    /// whose CDF Figs. 15 and 16 plot).
    pub fn mean_capacity(&self) -> f64 {
        Cdf::new(&self.per_round_capacity).mean()
    }

    /// Mean number of concurrent streams per round.
    pub fn mean_streams(&self) -> f64 {
        if self.per_round_streams.is_empty() {
            return 0.0;
        }
        self.per_round_streams.iter().sum::<usize>() as f64 / self.per_round_streams.len() as f64
    }

    /// Jain fairness index of the per-client airtime.
    pub fn airtime_fairness(&self) -> f64 {
        let x = &self.per_client_airtime_us;
        let n = x.len() as f64;
        let sum: f64 = x.iter().sum();
        let sum_sq: f64 = x.iter().map(|v| v * v).sum();
        if sum_sq == 0.0 {
            return 1.0;
        }
        sum * sum / (n * sum_sq)
    }
}

/// One concurrent transmission inside a round.
struct ActiveTransmission {
    ap_id: usize,
    /// AP-local indices of the antennas used.
    antenna_idx: Vec<usize>,
    /// Topology-wide client indices served, aligned with precoder columns.
    clients: Vec<usize>,
    /// Precoding matrix (antennas × streams).
    v: CMat,
}

/// The end-to-end network simulator bound to one topology.
pub struct NetworkSimulator {
    topo: Topology,
    config: NetworkSimConfig,
    model: ChannelModel,
    graph: ContentionGraph,
    rng: SimRng,
    /// Per-AP channel from the AP's antennas to *all* clients
    /// (rows = topology-wide client index).
    channels: Vec<ChannelMatrix>,
    /// Per-AP fairness state over the AP's own clients (AP-local indices).
    drr: Vec<DrrScheduler>,
    /// Per-AP tag tables over the AP's own clients (AP-local indices).
    tags: Vec<TagTable>,
}

impl NetworkSimulator {
    /// Creates a simulator for a topology.
    pub fn new(topo: Topology, config: NetworkSimConfig) -> Self {
        let mut model = ChannelModel::new(config.env, config.seed);
        let graph = ContentionGraph::new(config.env, config.seed ^ 0x5151);
        let rng = SimRng::new(config.seed).fork(0xAC);

        let all_client_positions: Vec<Point> = topo.clients.iter().map(|c| c.position).collect();
        let channels: Vec<ChannelMatrix> = topo
            .aps
            .iter()
            .map(|ap| model.realize_positions(&ap.antennas, &all_client_positions))
            .collect();

        let mut drr = Vec::new();
        let mut tags = Vec::new();
        for ap in &topo.aps {
            let own_clients = topo.clients_of(ap.ap_id);
            drr.push(DrrScheduler::new(own_clients.len()));
            // Tagging is driven by mean RSSI of each own client from each antenna.
            let rssi: Vec<Vec<f64>> = own_clients
                .iter()
                .map(|c| {
                    (0..ap.num_antennas())
                        .map(|k| channels[ap.ap_id].mean_rssi_dbm(c.id, k))
                        .collect()
                })
                .collect();
            tags.push(TagTable::from_rssi(&rssi, config.tag_width));
        }

        NetworkSimulator {
            topo,
            config,
            model,
            graph,
            rng,
            channels,
            drr,
            tags,
        }
    }

    /// The topology being simulated.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Runs the configured number of rounds and returns the aggregate result.
    pub fn run(&mut self) -> TopologyResult {
        let num_clients = self.topo.clients.len();
        let mut per_round_capacity = Vec::with_capacity(self.config.rounds);
        let mut per_round_streams = Vec::with_capacity(self.config.rounds);
        let mut per_client_airtime = vec![0.0; num_clients];

        for _round in 0..self.config.rounds {
            // Channel evolves between rounds (one TXOP apart).
            for ch in &mut self.channels {
                *ch = self.model.evolve(ch, DEFAULT_TXOP_US as f64 * 1e-6);
            }
            let transmissions = self.plan_round();
            let capacities = self.evaluate_round(&transmissions);

            let total_capacity: f64 = capacities.iter().map(|(_, c)| c).sum();
            let total_streams: usize = transmissions.iter().map(|t| t.clients.len()).sum();
            per_round_capacity.push(total_capacity);
            per_round_streams.push(total_streams);
            for (client, _) in &capacities {
                per_client_airtime[*client] += DEFAULT_TXOP_US as f64;
            }

            // Fairness counter updates per AP.
            for t in &transmissions {
                let ap_clients = self.topo.clients_of(t.ap_id);
                let local_of = |global: usize| ap_clients.iter().position(|c| c.id == global);
                let served: Vec<usize> = t.clients.iter().filter_map(|&g| local_of(g)).collect();
                let unserved: Vec<usize> = (0..ap_clients.len())
                    .filter(|l| !served.contains(l))
                    .collect();
                self.drr[t.ap_id].update_after_txop(&served, &unserved, DEFAULT_TXOP_US);
            }
        }

        TopologyResult {
            per_round_capacity,
            per_round_streams,
            per_client_airtime_us: per_client_airtime,
        }
    }

    /// Decides who transmits in one round.
    fn plan_round(&mut self) -> Vec<ActiveTransmission> {
        let num_aps = self.topo.aps.len();
        let mut order: Vec<usize> = (0..num_aps).collect();
        self.rng.shuffle(&mut order);

        let mut active_antenna_positions: Vec<Point> = Vec::new();
        let mut transmissions: Vec<ActiveTransmission> = Vec::new();

        for &ap_id in &order {
            let ap = &self.topo.aps[ap_id];
            let own_clients = self.topo.clients_of(ap_id);
            if own_clients.is_empty() {
                continue;
            }
            let backlogged: Vec<usize> = (0..own_clients.len()).collect();

            // Which antennas may transmit given what is already on the air?
            let available: Vec<usize> = match self.config.mac {
                MacKind::Midas => (0..ap.num_antennas())
                    .filter(|&k| {
                        !self
                            .graph
                            .senses_any(&ap.antennas[k], &active_antenna_positions)
                    })
                    .collect(),
                MacKind::Cas => {
                    let busy = ap
                        .antennas
                        .iter()
                        .any(|a| self.graph.senses_any(a, &active_antenna_positions));
                    if busy {
                        Vec::new()
                    } else {
                        (0..ap.num_antennas()).collect()
                    }
                }
            };
            if available.is_empty() {
                continue;
            }

            // Client selection.
            let local_selected: Vec<usize> = match self.config.mac {
                MacKind::Midas => {
                    let eligible = self.tags[ap_id].filter_clients(&backlogged, &available);
                    select_clients_midas(&available, &eligible, &self.tags[ap_id], &self.drr[ap_id])
                }
                MacKind::Cas => select_clients_cas(available.len(), &backlogged, &self.drr[ap_id]),
            };
            if local_selected.is_empty() {
                continue;
            }
            let global_selected: Vec<usize> =
                local_selected.iter().map(|&l| own_clients[l].id).collect();

            // Precoding over the (selected clients × available antennas) channel.
            let sub = self.channels[ap_id].select(&global_selected, &available);
            let precoder = make_precoder(self.config.precoder);
            let precoding = precoder.precode(&sub.h, sub.tx_power_mw, sub.noise_mw);

            for &k in &available {
                active_antenna_positions.push(ap.antennas[k]);
            }
            transmissions.push(ActiveTransmission {
                ap_id,
                antenna_idx: available,
                clients: global_selected,
                v: precoding.v,
            });
        }
        transmissions
    }

    /// Computes per-client capacities including cross-AP interference.
    fn evaluate_round(&self, transmissions: &[ActiveTransmission]) -> Vec<(usize, f64)> {
        let mut out = Vec::new();
        for t in transmissions {
            let ch = &self.channels[t.ap_id];
            for (stream_idx, &client) in t.clients.iter().enumerate() {
                // Desired + intra-AP interference from this transmission.
                let mut signal = 0.0;
                let mut interference = 0.0;
                for (other_stream, _) in t.clients.iter().enumerate() {
                    let mut amp = midas_linalg::Complex::ZERO;
                    for (row, &k) in t.antenna_idx.iter().enumerate() {
                        amp += ch.h.get(client, k) * t.v.get(row, other_stream);
                    }
                    if other_stream == stream_idx {
                        signal = amp.norm_sqr();
                    } else {
                        interference += amp.norm_sqr();
                    }
                }
                // Cross-AP interference from every other concurrent transmission.
                for other in transmissions {
                    if std::ptr::eq(other, t) {
                        continue;
                    }
                    let och = &self.channels[other.ap_id];
                    for other_stream in 0..other.clients.len() {
                        let mut amp = midas_linalg::Complex::ZERO;
                        for (row, &k) in other.antenna_idx.iter().enumerate() {
                            amp += och.h.get(client, k) * other.v.get(row, other_stream);
                        }
                        interference += amp.norm_sqr();
                    }
                }
                let noise = ch.noise_mw;
                let sinr = signal / (noise + interference);
                out.push((client, shannon_capacity_bps_hz(sinr)));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deployment::PairedTopology;

    fn three_ap_pair(seed: u64) -> PairedTopology {
        let mut rng = SimRng::new(seed);
        let cfg = crate::deployment::paper_das_config(&Environment::office_a(), 4, 4);
        PairedTopology::three_ap(&cfg, &mut rng)
    }

    #[test]
    fn simulation_produces_finite_positive_capacity() {
        let pair = three_ap_pair(1);
        let env = Environment::office_a();
        let mut sim = NetworkSimulator::new(pair.das, NetworkSimConfig::midas(env, 1));
        let result = sim.run();
        assert_eq!(result.per_round_capacity.len(), 20);
        assert!(result.mean_capacity() > 0.0);
        assert!(result.mean_capacity().is_finite());
        assert!(result.mean_streams() >= 1.0);
    }

    #[test]
    fn cas_never_exceeds_one_active_ap_in_a_shared_domain() {
        let pair = three_ap_pair(2);
        let env = Environment::office_a();
        let mut sim = NetworkSimulator::new(pair.cas, NetworkSimConfig::cas(env, 2));
        let result = sim.run();
        // All three CAS APs overhear each other, so at most 4 streams per round.
        for &s in &result.per_round_streams {
            assert!(s <= 4, "round had {s} concurrent streams under CAS");
        }
    }

    #[test]
    fn midas_achieves_more_concurrent_streams_than_cas() {
        let env = Environment::office_a();
        let mut das_streams = 0.0;
        let mut cas_streams = 0.0;
        for seed in 0..3 {
            let pair = three_ap_pair(10 + seed);
            let mut das_sim = NetworkSimulator::new(pair.das, NetworkSimConfig::midas(env, seed));
            let mut cas_sim = NetworkSimulator::new(pair.cas, NetworkSimConfig::cas(env, seed));
            das_streams += das_sim.run().mean_streams();
            cas_streams += cas_sim.run().mean_streams();
        }
        assert!(
            das_streams > cas_streams,
            "MIDAS mean streams {das_streams} should exceed CAS {cas_streams}"
        );
    }

    #[test]
    fn midas_outperforms_cas_end_to_end() {
        // Fig. 15's qualitative claim at test scale: MIDAS clearly beats CAS.
        let env = Environment::office_a();
        let mut das_capacity = 0.0;
        let mut cas_capacity = 0.0;
        for seed in 0..3 {
            let pair = three_ap_pair(20 + seed);
            let mut das_sim = NetworkSimulator::new(pair.das, NetworkSimConfig::midas(env, seed));
            let mut cas_sim = NetworkSimulator::new(pair.cas, NetworkSimConfig::cas(env, seed));
            das_capacity += das_sim.run().mean_capacity();
            cas_capacity += cas_sim.run().mean_capacity();
        }
        assert!(
            das_capacity > cas_capacity,
            "MIDAS capacity {das_capacity:.1} should exceed CAS {cas_capacity:.1}"
        );
    }

    #[test]
    fn airtime_fairness_is_reasonable_under_full_buffer_traffic() {
        let pair = three_ap_pair(30);
        let env = Environment::office_a();
        let mut sim = NetworkSimulator::new(pair.das, NetworkSimConfig::midas(env, 30));
        let result = sim.run();
        let fairness = result.airtime_fairness();
        assert!(
            fairness > 0.5,
            "Jain index {fairness} too low: {:?}",
            result.per_client_airtime_us
        );
    }
}
