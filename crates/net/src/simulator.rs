//! Round-based end-to-end network simulator (Figs. 15 and 16).
//!
//! The simulator plays out full-buffer downlink traffic in a multi-AP network
//! over a sequence of TXOP rounds.  Within a round the APs attempt channel
//! access in a random order (standing in for the backoff race); an AP — or in
//! MIDAS, each of its distributed antennas — joins the round only if it does
//! not carrier-sense a transmitter that already won the round.  Winning APs
//! select clients (MIDAS: virtual packet tagging + antenna-specific DRR; CAS:
//! fairness-only), precode (MIDAS: power-balanced; CAS: naïve global scaling)
//! and the resulting per-client SINRs include *cross-AP interference* from
//! every other concurrent transmission, so more spatial reuse only pays off
//! when the interference geometry allows it — exactly the trade-off §5.4
//! discusses.

use crate::capture::ContentionModel;
use crate::contention::ContentionGraph;
use crate::metrics::Cdf;
use crate::observer::{Accumulate, Observer, RoundRecord};
use crate::scale::index::SpatialIndex;
use crate::traffic::{FullBuffer, TrafficKind, TrafficModel};
use midas_channel::geometry::Point;
use midas_channel::topology::Topology;
use midas_channel::{ChannelMatrix, ChannelModel, Environment, SimRng};
use midas_linalg::CMat;
use midas_mac::client_select::{select_clients_cas, select_clients_midas};
use midas_mac::drr::DrrScheduler;
use midas_mac::tagging::TagTable;
use midas_mac::timing::DEFAULT_TXOP_US;
use midas_phy::capacity::shannon_capacity_bps_hz;
use midas_phy::precoder::{make_precoder, PrecoderKind};

/// Which MAC discipline the APs run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MacKind {
    /// MIDAS: per-antenna carrier sensing, packet tagging, DRR per antenna.
    Midas,
    /// CAS baseline: single channel state, all antennas, fairness-only selection.
    Cas,
}

/// How the simulator answers "who is near this point?" — carrier-sense and
/// cross-AP interference neighbourhoods.
///
/// Both modes apply the same interaction-range truncation and visit the
/// surviving points in the same (insertion) order, so they produce
/// **bit-identical** results; the property tests in `tests/proptest_scale.rs`
/// pin that equivalence.  `Indexed` is the default: O(n·k) per round via the
/// uniform-grid [`SpatialIndex`] instead of the O(n²) pairwise sweeps, which
/// is what keeps 64-AP / 512-client floors tractable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanMode {
    /// Uniform-grid spatial-index neighbourhood queries (default).
    Indexed,
    /// Reference all-pairs sweep, kept for equivalence testing.
    BruteForce,
}

/// Configuration of an end-to-end simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkSimConfig {
    /// Propagation environment.
    pub env: Environment,
    /// MAC discipline.
    pub mac: MacKind,
    /// Precoder used by every AP.
    pub precoder: PrecoderKind,
    /// Number of TXOP rounds simulated.
    pub rounds: usize,
    /// Number of antennas each client's packets are tagged with (MIDAS only).
    pub tag_width: usize,
    /// Random seed for channel realisations and access order.
    pub seed: u64,
    /// Radio interaction range (metres): a transmitter farther than this
    /// from a sensing antenna contributes nothing to carrier sensing, and a
    /// transmission whose antennas are all farther than this from a client
    /// contributes no interference.  `f64::INFINITY` (the constructor
    /// default, matching the paper-scale figures) disables truncation;
    /// enterprise scenarios set it from `Environment::interaction_range_m`.
    pub interaction_range_m: f64,
    /// Neighbourhood scan implementation (results are bit-identical).
    pub scan: ScanMode,
    /// Contention semantics: the legacy binary carrier-sense graph
    /// (default, bit-identical to the pre-capture simulator) or the
    /// physical energy-detect + SINR-capture model (`crate::capture`).
    pub contention: ContentionModel,
}

impl NetworkSimConfig {
    /// The MIDAS system configuration (DAS topology expected).
    pub fn midas(env: Environment, seed: u64) -> Self {
        NetworkSimConfig {
            env,
            mac: MacKind::Midas,
            precoder: PrecoderKind::PowerBalanced,
            rounds: 20,
            tag_width: 2,
            seed,
            interaction_range_m: f64::INFINITY,
            scan: ScanMode::Indexed,
            contention: ContentionModel::Graph,
        }
    }

    /// The conventional 802.11ac CAS configuration.
    pub fn cas(env: Environment, seed: u64) -> Self {
        NetworkSimConfig {
            env,
            mac: MacKind::Cas,
            precoder: PrecoderKind::NaiveScaled,
            rounds: 20,
            tag_width: 2,
            seed,
            interaction_range_m: f64::INFINITY,
            scan: ScanMode::Indexed,
            contention: ContentionModel::Graph,
        }
    }

    /// Cell size the simulator's spatial indices use: the interaction range
    /// (radius-`r` queries then touch at most a 3×3 window).
    fn index_cell_m(&self) -> f64 {
        self.interaction_range_m
    }

    /// Whether the indexed scan actually runs.  With an infinite interaction
    /// range a neighbourhood query degenerates to "every point" — provably
    /// the same result, but the query/sort machinery would be pure overhead
    /// on the paper-scale figures — so the index is only engaged when a
    /// finite range gives it something to prune.
    fn use_index(&self) -> bool {
        self.scan == ScanMode::Indexed && self.interaction_range_m.is_finite()
    }
}

/// Result of simulating one topology.
#[derive(Debug, Clone, PartialEq)]
pub struct TopologyResult {
    /// Aggregate network capacity per round (bit/s/Hz summed over all
    /// concurrent streams).
    pub per_round_capacity: Vec<f64>,
    /// Number of concurrent streams per round.
    pub per_round_streams: Vec<usize>,
    /// Total service time credited to each client (µs), for fairness checks.
    pub per_client_airtime_us: Vec<f64>,
    /// Capacity delivered to each client, summed over all rounds
    /// (bit/s/Hz) — the per-client series whose pooled CDF the paper's
    /// Fig. 16 plots (a client far from its CAS array vs the same client
    /// near a distributed antenna).
    pub per_client_capacity: Vec<f64>,
    /// Capacity attributed to each AP, summed over all rounds (bit/s/Hz) —
    /// the per-AP diagnostic behind the Fig. 16 calibration work: it shows
    /// which APs in a large floor are starved by contention vs drowned in
    /// cross-AP interference.
    pub per_ap_capacity: Vec<f64>,
    /// Rounds in which each AP (any of its antennas) transmitted.
    pub per_ap_active_rounds: Vec<usize>,
}

impl TopologyResult {
    /// Mean aggregate network capacity over the rounds (the per-topology value
    /// whose CDF Figs. 15 and 16 plot); 0.0 for a zero-round run.
    pub fn mean_capacity(&self) -> f64 {
        if self.per_round_capacity.is_empty() {
            return 0.0;
        }
        Cdf::new(&self.per_round_capacity).mean()
    }

    /// Mean number of concurrent streams per round.
    pub fn mean_streams(&self) -> f64 {
        if self.per_round_streams.is_empty() {
            return 0.0;
        }
        self.per_round_streams.iter().sum::<usize>() as f64 / self.per_round_streams.len() as f64
    }

    /// Mean capacity attributed to each AP per round (bit/s/Hz) — zero for
    /// APs that never won channel access.
    pub fn per_ap_mean_capacity(&self) -> Vec<f64> {
        let rounds = self.per_round_capacity.len().max(1) as f64;
        self.per_ap_capacity.iter().map(|c| c / rounds).collect()
    }

    /// Mean capacity delivered to each client per round (bit/s/Hz) — zero
    /// for clients that were never served (or whose every frame collided).
    pub fn per_client_mean_capacity(&self) -> Vec<f64> {
        let rounds = self.per_round_capacity.len().max(1) as f64;
        self.per_client_capacity
            .iter()
            .map(|c| c / rounds)
            .collect()
    }

    /// Fraction of rounds each AP managed to transmit in; all zeros for a
    /// zero-round run.
    pub fn per_ap_duty_cycle(&self) -> Vec<f64> {
        let rounds = self.per_round_capacity.len().max(1) as f64;
        self.per_ap_active_rounds
            .iter()
            .map(|&r| r as f64 / rounds)
            .collect()
    }

    /// Jain fairness index of the per-client airtime.  Well-defined on any
    /// run: a zero-round (or never-served) run has uniformly zero airtime,
    /// which is perfectly fair, so it reports 1.0 rather than the 0/0 NaN
    /// the raw formula would produce.
    pub fn airtime_fairness(&self) -> f64 {
        let x = &self.per_client_airtime_us;
        let n = x.len() as f64;
        let sum: f64 = x.iter().sum();
        let sum_sq: f64 = x.iter().map(|v| v * v).sum();
        if sum_sq == 0.0 {
            return 1.0;
        }
        sum * sum / (n * sum_sq)
    }
}

/// One concurrent transmission inside a round.
struct ActiveTransmission {
    ap_id: usize,
    /// AP-local indices of the antennas used.
    antenna_idx: Vec<usize>,
    /// Topology-wide client indices served, aligned with precoder columns.
    clients: Vec<usize>,
    /// Precoding matrix (antennas × streams).
    v: CMat,
}

/// One AP's channel state, restricted to the clients in radio range.
///
/// With a finite interaction range an AP's signal is unreadable — and its
/// interference untruncated-zero — at clients beyond the cutoff, so there is
/// no reason to realise, store or evolve those rows: per-AP channel state
/// shrinks from O(all clients) to O(clients in range), which is what turns
/// the simulator's per-round cost from O(n²) into O(n·k) at enterprise
/// scale.  Rows are indexed by *global* client id through `row_of`.
struct ApChannel {
    ch: ChannelMatrix,
    /// Global client id → row of `ch`; `None` when the client is out of
    /// radio range of every antenna of this AP (its channel is never read).
    row_of: Vec<Option<u32>>,
}

impl ApChannel {
    fn row(&self, client: usize) -> usize {
        self.row_of[client].expect("channel row requested for an out-of-range client") as usize
    }

    /// Channel coefficient from AP-local antenna `k` to a global client.
    fn h_get(&self, client: usize, antenna: usize) -> midas_linalg::Complex {
        self.ch.h.get(self.row(client), antenna)
    }

    /// Mean RSSI (dBm) of a global client from AP-local antenna `k`.
    fn mean_rssi_dbm(&self, client: usize, antenna: usize) -> f64 {
        self.ch.mean_rssi_dbm(self.row(client), antenna)
    }

    /// Sub-channel over global clients × AP-local antennas.
    fn select(&self, clients: &[usize], antennas: &[usize]) -> ChannelMatrix {
        let rows: Vec<usize> = clients.iter().map(|&c| self.row(c)).collect();
        self.ch.select(&rows, antennas)
    }
}

/// The end-to-end network simulator bound to one topology.
pub struct NetworkSimulator {
    topo: Topology,
    config: NetworkSimConfig,
    model: ChannelModel,
    graph: ContentionGraph,
    rng: SimRng,
    /// Per-AP channel to the clients within radio range (all clients when
    /// the interaction range is infinite).
    channels: Vec<ApChannel>,
    /// Per-AP fairness state over the AP's own clients (AP-local indices).
    drr: Vec<DrrScheduler>,
    /// Per-AP tag tables over the AP's own clients (AP-local indices).
    tags: Vec<TagTable>,
    /// Downlink workload: which clients are backlogged each round.
    /// Defaults to [`FullBuffer`], which reproduces the pre-traffic-model
    /// simulator byte for byte.
    traffic: Box<dyn TrafficModel>,
}

impl NetworkSimulator {
    /// Creates a simulator for a topology.
    pub fn new(topo: Topology, config: NetworkSimConfig) -> Self {
        let mut model = ChannelModel::new(config.env, config.seed);
        // For `ContentionModel::Graph` this is exactly the legacy
        // `ContentionGraph::new(env, seed ^ 0x5151)`; the physical model
        // swaps in its own threshold / sensing field here and nothing else
        // in the planning path changes.
        let graph = config
            .contention
            .sensing_graph(config.env, config.seed ^ 0x5151);
        let rng = SimRng::new(config.seed).fork(0xAC);

        let num_clients = topo.clients.len();
        let cutoff = config.interaction_range_m;
        let client_index = cutoff.is_finite().then(|| {
            SpatialIndex::from_points(
                topo.region,
                config.index_cell_m(),
                &topo.clients.iter().map(|c| c.position).collect::<Vec<_>>(),
            )
        });
        let channels: Vec<ApChannel> = topo
            .aps
            .iter()
            .map(|ap| {
                // Rows: every client within the interaction range of any of
                // this AP's antennas (their signal/interference is exactly
                // zero beyond it), plus the AP's own clients so scheduling
                // state is always defined.
                let mut visible: Vec<usize> = if let Some(index) = &client_index {
                    let mut v: Vec<usize> = ap
                        .antennas
                        .iter()
                        .flat_map(|a| index.neighbors_within(a, cutoff))
                        .collect();
                    v.extend(
                        topo.clients
                            .iter()
                            .filter(|c| c.ap_id == ap.ap_id)
                            .map(|c| c.id),
                    );
                    v.sort_unstable();
                    v.dedup();
                    v
                } else {
                    (0..num_clients).collect()
                };
                visible.shrink_to_fit();
                let positions: Vec<Point> =
                    visible.iter().map(|&c| topo.clients[c].position).collect();
                let ch = model.realize_positions(&ap.antennas, &positions);
                let mut row_of = vec![None; num_clients];
                for (row, &c) in visible.iter().enumerate() {
                    row_of[c] = Some(row as u32);
                }
                ApChannel { ch, row_of }
            })
            .collect();

        let mut drr = Vec::new();
        let mut tags = Vec::new();
        for ap in &topo.aps {
            let own_clients = topo.clients_of(ap.ap_id);
            drr.push(DrrScheduler::new(own_clients.len()));
            // Tagging is driven by mean RSSI of each own client from each antenna.
            let rssi: Vec<Vec<f64>> = own_clients
                .iter()
                .map(|c| {
                    (0..ap.num_antennas())
                        .map(|k| channels[ap.ap_id].mean_rssi_dbm(c.id, k))
                        .collect()
                })
                .collect();
            tags.push(TagTable::from_rssi(&rssi, config.tag_width));
        }

        NetworkSimulator {
            topo,
            config,
            model,
            graph,
            rng,
            channels,
            drr,
            tags,
            traffic: Box::new(FullBuffer),
        }
    }

    /// Replaces the traffic model (default: [`FullBuffer`]) with a custom
    /// [`TrafficModel`] implementation.  Consumes and returns the simulator
    /// so it composes with construction.
    pub fn with_traffic(mut self, traffic: Box<dyn TrafficModel>) -> Self {
        self.traffic = traffic;
        self
    }

    /// Replaces the traffic model with a library workload described by
    /// `kind`, seeded from this simulation's seed.
    pub fn with_traffic_kind(self, kind: TrafficKind) -> Self {
        let seed = self.config.seed;
        self.with_traffic(kind.instantiate(seed))
    }

    /// The topology being simulated.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Runs the configured number of rounds and returns the aggregate result.
    ///
    /// Equivalent to streaming into an [`Accumulate`] observer — which is
    /// exactly what it does, so results are bit-identical to the historical
    /// accumulate-in-place loop.  For memory-bounded long-horizon runs,
    /// stream into a fixed-size observer via [`NetworkSimulator::run_with`]
    /// instead.
    pub fn run(&mut self) -> TopologyResult {
        let mut acc = Accumulate::new();
        self.run_with(&mut acc);
        acc.into_result()
    }

    /// Runs the configured number of rounds, streaming each round into
    /// `observer` instead of accumulating anything — peak memory is the
    /// observer's, flat in the round count for fixed-size observers.
    pub fn run_with(&mut self, observer: &mut dyn Observer) {
        observer.on_start(
            self.topo.clients.len(),
            self.topo.aps.len(),
            self.config.rounds,
        );
        let mut transmitting_aps: Vec<usize> = Vec::new();
        for round in 0..self.config.rounds {
            // Channel evolves between rounds (one TXOP apart).
            for apch in &mut self.channels {
                apch.ch = self.model.evolve(&apch.ch, DEFAULT_TXOP_US as f64 * 1e-6);
            }
            let transmissions = self.plan_round(round);
            let capacities = self.evaluate_round(&transmissions);

            transmitting_aps.clear();
            transmitting_aps.extend(transmissions.iter().map(|t| t.ap_id));
            let total_streams: usize = transmissions.iter().map(|t| t.clients.len()).sum();
            observer.on_round(&RoundRecord {
                round,
                deliveries: &capacities,
                transmitting_aps: &transmitting_aps,
                streams: total_streams,
            });

            // Fairness counter and traffic-queue updates per AP.
            for t in &transmissions {
                let ap_clients = self.topo.clients_of(t.ap_id);
                let local_of = |global: usize| ap_clients.iter().position(|c| c.id == global);
                let served: Vec<usize> = t.clients.iter().filter_map(|&g| local_of(g)).collect();
                let unserved: Vec<usize> = (0..ap_clients.len())
                    .filter(|l| !served.contains(l))
                    .collect();
                self.drr[t.ap_id].update_after_txop(&served, &unserved, DEFAULT_TXOP_US);
                for &l in &served {
                    self.traffic.served(t.ap_id, l);
                }
            }
        }
    }

    /// Decides who transmits in one round.
    fn plan_round(&mut self, round: usize) -> Vec<ActiveTransmission> {
        let num_aps = self.topo.aps.len();
        let mut order: Vec<usize> = (0..num_aps).collect();
        self.rng.shuffle(&mut order);

        let cutoff = self.config.interaction_range_m;
        let mut active_antenna_positions: Vec<Point> = Vec::new();
        // Mirror of `active_antenna_positions` supporting O(k) "who can I
        // hear?" queries; ids are insertion-ordered, so folding over a
        // neighbourhood reproduces the brute-force sweep bit-for-bit.
        let mut active_index = self
            .config
            .use_index()
            .then(|| SpatialIndex::new(self.topo.region, self.config.index_cell_m()));
        let mut transmissions: Vec<ActiveTransmission> = Vec::new();

        for &ap_id in &order {
            let ap = &self.topo.aps[ap_id];
            let own_clients = self.topo.clients_of(ap_id);
            if own_clients.is_empty() {
                continue;
            }
            // Which of this AP's clients have downlink data this round?
            // Full-buffer answers "all of them" without touching any RNG,
            // so the legacy figures are unchanged; lighter workloads thin
            // the candidate set (an AP with nothing queued stays silent).
            let backlogged = self.traffic.backlogged(ap_id, own_clients.len(), round);
            if backlogged.is_empty() {
                continue;
            }

            // Energy-detection carrier sensing against the transmitters
            // already on the air, truncated at the interaction range.  The
            // contention model only changes which graph (threshold /
            // sensing field) `self.graph` was built from — the sensing
            // arithmetic is shared, so both models and both scan modes
            // visit the surviving antennas in the same order.
            let senses = |antenna: &Point| -> bool {
                match &active_index {
                    None => {
                        self.graph
                            .senses_any_within(antenna, &active_antenna_positions, cutoff)
                    }
                    Some(index) => self.graph.senses_aggregate(
                        antenna,
                        index
                            .neighbors_within(antenna, cutoff)
                            .into_iter()
                            .map(|id| &active_antenna_positions[id]),
                    ),
                }
            };

            // Which antennas may transmit given what is already on the air?
            let available: Vec<usize> = match self.config.mac {
                MacKind::Midas => (0..ap.num_antennas())
                    .filter(|&k| !senses(&ap.antennas[k]))
                    .collect(),
                MacKind::Cas => {
                    let busy = ap.antennas.iter().any(&senses);
                    if busy {
                        Vec::new()
                    } else {
                        (0..ap.num_antennas()).collect()
                    }
                }
            };
            if available.is_empty() {
                continue;
            }

            // Client selection.
            let local_selected: Vec<usize> = match self.config.mac {
                MacKind::Midas => {
                    let eligible = self.tags[ap_id].filter_clients(&backlogged, &available);
                    select_clients_midas(&available, &eligible, &self.tags[ap_id], &self.drr[ap_id])
                }
                MacKind::Cas => select_clients_cas(available.len(), &backlogged, &self.drr[ap_id]),
            };
            if local_selected.is_empty() {
                continue;
            }
            let global_selected: Vec<usize> =
                local_selected.iter().map(|&l| own_clients[l].id).collect();

            // Precoding over the (selected clients × available antennas) channel.
            let sub = self.channels[ap_id].select(&global_selected, &available);
            let precoder = make_precoder(self.config.precoder);
            let precoding = precoder.precode(&sub.h, sub.tx_power_mw, sub.noise_mw);

            for &k in &available {
                active_antenna_positions.push(ap.antennas[k]);
                if let Some(index) = &mut active_index {
                    index.insert(ap.antennas[k]);
                }
            }
            transmissions.push(ActiveTransmission {
                ap_id,
                antenna_idx: available,
                clients: global_selected,
                v: precoding.v,
            });
        }
        transmissions
    }

    /// Computes per-client capacities including cross-AP interference.
    ///
    /// Returns `(client, serving AP, capacity)` triples.  A concurrent
    /// transmission only interferes with a client when at least one of its
    /// transmitting antennas is within the interaction range; both scan
    /// modes apply that rule and visit interferers in transmission order, so
    /// the capacities are bit-identical between them.
    fn evaluate_round(&self, transmissions: &[ActiveTransmission]) -> Vec<(usize, usize, f64)> {
        let cutoff = self.config.interaction_range_m;
        // Map every active antenna back to its transmission for the indexed
        // interferer lookup.
        let interferer_index = self.config.use_index().then(|| {
            let mut index = SpatialIndex::new(self.topo.region, self.config.index_cell_m());
            let mut tx_of_antenna = Vec::new();
            for (tx_idx, t) in transmissions.iter().enumerate() {
                for &k in &t.antenna_idx {
                    index.insert(self.topo.aps[t.ap_id].antennas[k]);
                    tx_of_antenna.push(tx_idx);
                }
            }
            (index, tx_of_antenna)
        });

        let mut out = Vec::new();
        for (tx_idx, t) in transmissions.iter().enumerate() {
            let ch = &self.channels[t.ap_id];
            for (stream_idx, &client) in t.clients.iter().enumerate() {
                let client_pos = &self.topo.clients[client].position;
                // Desired + intra-AP interference from this transmission.
                // Intra-AP leakage is tracked separately from cross-AP
                // interference: the serving AP's precoder knows about the
                // former, so only the former enters the *expected* SINR the
                // physical model's rate adaptation sees.
                let mut signal = 0.0;
                let mut intra_interference = 0.0;
                for (other_stream, _) in t.clients.iter().enumerate() {
                    let mut amp = midas_linalg::Complex::ZERO;
                    for (row, &k) in t.antenna_idx.iter().enumerate() {
                        amp += ch.h_get(client, k) * t.v.get(row, other_stream);
                    }
                    if other_stream == stream_idx {
                        signal = amp.norm_sqr();
                    } else {
                        intra_interference += amp.norm_sqr();
                    }
                }
                let mut interference = intra_interference;
                // Cross-AP interference from the concurrent transmissions in
                // radio range of this client, in transmission order.
                let interferers: Vec<usize> = match &interferer_index {
                    Some((index, tx_of_antenna)) => {
                        let mut ids: Vec<usize> = index
                            .neighbors_within(client_pos, cutoff)
                            .into_iter()
                            .map(|antenna_id| tx_of_antenna[antenna_id])
                            .collect();
                        ids.dedup(); // antenna ids are sorted, so tx ids are too
                        ids
                    }
                    None => (0..transmissions.len())
                        .filter(|&o| {
                            transmissions[o].antenna_idx.iter().any(|&k| {
                                self.topo.aps[transmissions[o].ap_id].antennas[k]
                                    .distance(client_pos)
                                    <= cutoff
                            })
                        })
                        .collect(),
                };
                for o in interferers {
                    if o == tx_idx {
                        continue;
                    }
                    let other = &transmissions[o];
                    let och = &self.channels[other.ap_id];
                    for other_stream in 0..other.clients.len() {
                        let mut amp = midas_linalg::Complex::ZERO;
                        for (row, &k) in other.antenna_idx.iter().enumerate() {
                            amp += och.h_get(client, k) * other.v.get(row, other_stream);
                        }
                        interference += amp.norm_sqr();
                    }
                }
                let noise = ch.ch.noise_mw;
                let sinr = signal / (noise + interference);
                // Graph model: every transmitted stream earns its Shannon
                // capacity.  Physical model: the serving AP's rate
                // adaptation picked an MCS from the SINR its precoding
                // predicts (intra-AP only — it cannot foresee who else won
                // the round), and the receiver only captures the frame when
                // the realized SINR still clears that MCS's threshold;
                // otherwise the collision costs the whole frame.
                let capacity = match self.config.contention.physical() {
                    Some(p) => {
                        let expected = signal / (noise + intra_interference);
                        if p.frame_captured_linear(expected, sinr) {
                            shannon_capacity_bps_hz(sinr)
                        } else {
                            0.0
                        }
                    }
                    None => shannon_capacity_bps_hz(sinr),
                };
                out.push((client, t.ap_id, capacity));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deployment::PairedTopology;

    fn three_ap_pair(seed: u64) -> PairedTopology {
        let mut rng = SimRng::new(seed);
        let cfg = crate::deployment::paper_das_config(&Environment::office_a(), 4, 4);
        PairedTopology::three_ap(&cfg, &mut rng)
    }

    #[test]
    fn simulation_produces_finite_positive_capacity() {
        let pair = three_ap_pair(1);
        let env = Environment::office_a();
        let mut sim = NetworkSimulator::new(pair.das, NetworkSimConfig::midas(env, 1));
        let result = sim.run();
        assert_eq!(result.per_round_capacity.len(), 20);
        assert!(result.mean_capacity() > 0.0);
        assert!(result.mean_capacity().is_finite());
        assert!(result.mean_streams() >= 1.0);
    }

    #[test]
    fn cas_never_exceeds_one_active_ap_in_a_shared_domain() {
        let pair = three_ap_pair(2);
        let env = Environment::office_a();
        let mut sim = NetworkSimulator::new(pair.cas, NetworkSimConfig::cas(env, 2));
        let result = sim.run();
        // All three CAS APs overhear each other, so at most 4 streams per round.
        for &s in &result.per_round_streams {
            assert!(s <= 4, "round had {s} concurrent streams under CAS");
        }
    }

    #[test]
    fn midas_achieves_more_concurrent_streams_than_cas() {
        let env = Environment::office_a();
        let mut das_streams = 0.0;
        let mut cas_streams = 0.0;
        for seed in 0..3 {
            let pair = three_ap_pair(10 + seed);
            let mut das_sim = NetworkSimulator::new(pair.das, NetworkSimConfig::midas(env, seed));
            let mut cas_sim = NetworkSimulator::new(pair.cas, NetworkSimConfig::cas(env, seed));
            das_streams += das_sim.run().mean_streams();
            cas_streams += cas_sim.run().mean_streams();
        }
        assert!(
            das_streams > cas_streams,
            "MIDAS mean streams {das_streams} should exceed CAS {cas_streams}"
        );
    }

    #[test]
    fn midas_outperforms_cas_end_to_end() {
        // Fig. 15's qualitative claim at test scale: MIDAS clearly beats CAS.
        let env = Environment::office_a();
        let mut das_capacity = 0.0;
        let mut cas_capacity = 0.0;
        for seed in 0..3 {
            let pair = three_ap_pair(20 + seed);
            let mut das_sim = NetworkSimulator::new(pair.das, NetworkSimConfig::midas(env, seed));
            let mut cas_sim = NetworkSimulator::new(pair.cas, NetworkSimConfig::cas(env, seed));
            das_capacity += das_sim.run().mean_capacity();
            cas_capacity += cas_sim.run().mean_capacity();
        }
        assert!(
            das_capacity > cas_capacity,
            "MIDAS capacity {das_capacity:.1} should exceed CAS {cas_capacity:.1}"
        );
    }

    #[test]
    fn airtime_fairness_is_reasonable_under_full_buffer_traffic() {
        let pair = three_ap_pair(30);
        let env = Environment::office_a();
        let mut sim = NetworkSimulator::new(pair.das, NetworkSimConfig::midas(env, 30));
        let result = sim.run();
        let fairness = result.airtime_fairness();
        assert!(
            fairness > 0.5,
            "Jain index {fairness} too low: {:?}",
            result.per_client_airtime_us
        );
    }
}
