//! # midas-net
//!
//! Multi-AP network layer for the MIDAS (CoNEXT'14) reproduction: everything
//! that happens *between* APs — carrier-sense relationships, spatial reuse,
//! coverage and hidden terminals — plus the end-to-end PHY+MAC simulator that
//! regenerates the paper's Figs. 12–16.
//!
//! * [`deployment`] — paired CAS/DAS topology generation (same APs and
//!   clients, different antenna placement) for like-for-like comparisons.
//! * [`contention`] — carrier-sense graphs between antennas and APs.
//! * [`capture`] — the physical contention model: energy-detect carrier
//!   sensing at a configurable threshold plus SINR-based capture at the
//!   receiver, selectable via `ContentionModel` (Fig. 16 calibration).
//! * [`spatial_reuse`] — the simultaneous-transmission experiment of §5.3.1
//!   (Fig. 12).
//! * [`coverage`] — dead-zone mapping of §5.3.3 (Fig. 13).
//! * [`hidden_terminal`] — the hidden-terminal spot analysis of §5.3.4.
//! * [`simulator`] — round-based end-to-end network simulation combining the
//!   MIDAS / CAS MACs with the precoders (Figs. 15 and 16).
//! * [`dynamics`] — the long-horizon mutation layer: client mobility
//!   (random waypoint, corridor flow), per-round roaming with hysteresis,
//!   all off by default (static runs stay byte-identical).
//! * [`traffic`] — pluggable downlink workloads (`FullBuffer`, `OnOff`,
//!   `Poisson`, plus the diurnal / flash-crowd / churn long-horizon
//!   envelopes) deciding which clients are backlogged each round.
//! * [`observer`] — streaming per-round result consumers (`Accumulate`
//!   rebuilds `TopologyResult` bit-for-bit; `RunningSummary` is
//!   memory-flat in the round count).
//! * [`scale`] — the enterprise-scale subsystem: arbitrary floor grids,
//!   a uniform-grid spatial index replacing the O(n²) sweeps, pluggable
//!   client-association policies, and the named scenario library.
//! * [`metrics`] — CDFs and summary statistics used by every experiment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod capture;
pub mod contention;
pub mod coverage;
pub mod deployment;
pub mod dynamics;
pub mod hidden_terminal;
pub mod metrics;
pub mod observer;
pub mod scale;
pub mod simulator;
pub mod spatial_reuse;
pub mod traffic;

pub use capture::{ContentionModel, PhysicalConfig};
pub use dynamics::{DynamicsSpec, MobilityModel, ReassociationSpec};
pub use metrics::Cdf;
pub use observer::{Accumulate, Observer, RoundRecord, RunningSummary};
pub use scale::{AssociationPolicy, FloorGrid, Scenario, SpatialIndex};
pub use simulator::{NetworkSimConfig, NetworkSimulator, ScanMode, TopologyResult};
pub use traffic::{FullBuffer, TrafficKind, TrafficModel};
