//! Result aggregation: empirical CDFs and summary statistics.
//!
//! Every figure in the paper's evaluation is either a CDF over topologies /
//! clients or a per-topology series; this module provides the small amount of
//! statistics machinery the bench harness needs to print them.

/// An empirical cumulative distribution function over f64 samples.
#[derive(Debug, Clone, PartialEq)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds a CDF from raw samples (NaNs are dropped).
    pub fn new(samples: &[f64]) -> Self {
        let mut sorted: Vec<f64> = samples.iter().copied().filter(|x| x.is_finite()).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        Cdf { sorted }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the CDF has no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The `q`-quantile (0.0–1.0) using nearest-rank interpolation.
    ///
    /// # Panics
    /// Panics on an empty CDF or a quantile outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(!self.is_empty(), "quantile of empty CDF");
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        let n = self.sorted.len();
        let pos = q * (n - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        if lo == hi {
            self.sorted[lo]
        } else {
            let frac = pos - lo as f64;
            self.sorted[lo] * (1.0 - frac) + self.sorted[hi] * frac
        }
    }

    /// Median (50th percentile).
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Arithmetic mean of the samples.
    pub fn mean(&self) -> f64 {
        if self.is_empty() {
            return f64::NAN;
        }
        self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
    }

    /// Smallest sample.
    pub fn min(&self) -> f64 {
        *self.sorted.first().unwrap_or(&f64::NAN)
    }

    /// Largest sample.
    pub fn max(&self) -> f64 {
        *self.sorted.last().unwrap_or(&f64::NAN)
    }

    /// Fraction of samples at or below `x`.
    pub fn fraction_below(&self, x: f64) -> f64 {
        if self.is_empty() {
            return f64::NAN;
        }
        let count = self.sorted.iter().filter(|&&s| s <= x).count();
        count as f64 / self.sorted.len() as f64
    }

    /// The `(value, cumulative probability)` points of the empirical CDF, in
    /// ascending value order — the series the paper's CDF figures plot.
    pub fn points(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len();
        self.sorted
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, (i + 1) as f64 / n as f64))
            .collect()
    }

    /// Renders the CDF as `value<TAB>probability` rows, optionally
    /// down-sampled to at most `max_rows` rows (evenly spaced in rank).
    pub fn to_rows(&self, max_rows: usize) -> String {
        let pts = self.points();
        let step = (pts.len() / max_rows.max(1)).max(1);
        let mut out = String::new();
        for (i, (v, p)) in pts.iter().enumerate() {
            if i % step == 0 || i == pts.len() - 1 {
                out.push_str(&format!("{v:.4}\t{p:.4}\n"));
            }
        }
        out
    }
}

/// Relative gain of `new` over `baseline`, as a fraction (0.5 = +50 %).
pub fn relative_gain(new: f64, baseline: f64) -> f64 {
    if baseline == 0.0 {
        return f64::INFINITY;
    }
    (new - baseline) / baseline
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_of_known_distribution() {
        let c = Cdf::new(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(c.len(), 5);
        assert_eq!(c.median(), 3.0);
        assert_eq!(c.quantile(0.0), 1.0);
        assert_eq!(c.quantile(1.0), 5.0);
        assert!((c.quantile(0.25) - 2.0).abs() < 1e-12);
        assert!((c.mean() - 3.0).abs() < 1e-12);
        assert_eq!(c.min(), 1.0);
        assert_eq!(c.max(), 5.0);
    }

    #[test]
    fn fraction_below_matches_definition() {
        let c = Cdf::new(&[10.0, 20.0, 30.0, 40.0]);
        assert!((c.fraction_below(25.0) - 0.5).abs() < 1e-12);
        assert_eq!(c.fraction_below(5.0), 0.0);
        assert_eq!(c.fraction_below(100.0), 1.0);
    }

    #[test]
    fn points_are_monotone_in_both_axes() {
        let c = Cdf::new(&[3.0, 1.0, 2.0, 2.0]);
        let pts = c.points();
        assert_eq!(pts.len(), 4);
        for w in pts.windows(2) {
            assert!(w[1].0 >= w[0].0);
            assert!(w[1].1 > w[0].1);
        }
        assert!((pts.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nan_samples_are_dropped() {
        let c = Cdf::new(&[1.0, f64::NAN, 2.0]);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn rows_are_downsampled() {
        let samples: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let c = Cdf::new(&samples);
        let rows = c.to_rows(10);
        let count = rows.lines().count();
        assert!(count <= 12, "rows {count}");
    }

    #[test]
    fn relative_gain_is_signed() {
        assert!((relative_gain(15.0, 10.0) - 0.5).abs() < 1e-12);
        assert!((relative_gain(5.0, 10.0) + 0.5).abs() < 1e-12);
        assert!(relative_gain(1.0, 0.0).is_infinite());
    }
}
