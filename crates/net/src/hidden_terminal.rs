//! Hidden-terminal analysis — paper §5.3.4.
//!
//! Setup: two APs placed so that they cannot overhear each other (just beyond
//! carrier-sense range) but not so far apart that their coverage areas stop
//! interacting.  A grid spot is a *hidden-terminal spot* if a client there
//! would be covered by one AP while also receiving interference from the
//! other AP — and the two transmitters cannot carrier-sense each other, so
//! they will not defer and the client suffers collisions.
//!
//! With DAS, each AP's antennas are pushed outwards (50–75 % of the coverage
//! range, §5.3.4), so (i) some antenna of AP 1 is usually able to sense some
//! antenna of AP 2, which removes the hiddenness, and (ii) transmit power is
//! spread more evenly over the area.  The paper reports that ≈ 94 % of the
//! hidden-terminal spots disappear.

use crate::capture::ContentionModel;
use crate::scale::index::SpatialIndex;
use midas_channel::geometry::{Point, Rect};
use midas_channel::topology::{place_antennas, Deployment, TopologyConfig};
use midas_channel::{dbm_to_mw, mw_to_dbm, ChannelModel, DeploymentKind, Environment, SimRng};

/// Result of one paired hidden-terminal comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HiddenTerminalComparison {
    /// Hidden-terminal spots with the CAS deployment.
    pub cas_spots: usize,
    /// Hidden-terminal spots with the DAS deployment.
    pub das_spots: usize,
    /// Total grid spots examined.
    pub total_spots: usize,
}

impl HiddenTerminalComparison {
    /// Fraction of CAS hidden-terminal spots removed by DAS.
    pub fn reduction(&self) -> f64 {
        if self.cas_spots == 0 {
            return 0.0;
        }
        1.0 - self.das_spots as f64 / self.cas_spots as f64
    }
}

/// The two-AP hidden-terminal scenario.
#[derive(Debug, Clone)]
pub struct HiddenTerminalScenario {
    /// The propagation environment.
    pub env: Environment,
    /// AP 1 (CAS and DAS variants share its position).
    pub ap1_pos: Point,
    /// AP 2 position.
    pub ap2_pos: Point,
    /// Region over which spots are sampled.
    pub region: Rect,
}

impl HiddenTerminalScenario {
    /// Builds the paper's scenario: two APs separated slightly beyond the
    /// carrier-sense range of a full 4-antenna CAS MU-MIMO transmission (so
    /// the co-located deployments genuinely cannot hear each other), but
    /// close enough that their coverage areas still interact.
    pub fn new(env: Environment) -> Self {
        let cs_range = env.array_carrier_sense_range_m(4);
        let separation = cs_range * 1.15;
        let margin = env.coverage_range_m();
        let ap1_pos = Point::new(margin, margin);
        let ap2_pos = Point::new(margin + separation, margin);
        let region = Rect::new(
            Point::new(0.0, 0.0),
            2.0 * margin + separation,
            2.0 * margin,
        );
        HiddenTerminalScenario {
            env,
            ap1_pos,
            ap2_pos,
            region,
        }
    }

    /// Deploys both APs with the given kind, using the paper's guidance of
    /// placing DAS antennas at 50–75 % of the CAS coverage range.
    fn deploy(&self, kind: DeploymentKind, rng: &mut SimRng) -> (Deployment, Deployment) {
        let range = self.env.coverage_range_m();
        let cfg = TopologyConfig {
            kind,
            das_radius_min_m: 0.5 * range,
            das_radius_max_m: 0.75 * range,
            ..TopologyConfig::das(4, 4)
        };
        let ap1 = Deployment {
            ap_id: 0,
            position: self.ap1_pos,
            kind,
            antennas: place_antennas(self.ap1_pos, &cfg, &self.region, rng),
        };
        let ap2 = Deployment {
            ap_id: 1,
            position: self.ap2_pos,
            kind,
            antennas: place_antennas(self.ap2_pos, &cfg, &self.region, rng),
        };
        (ap1, ap2)
    }

    /// Counts hidden-terminal spots for one deployment pair under the given
    /// contention model.
    fn count_spots(
        &self,
        ap1: &Deployment,
        ap2: &Deployment,
        spacing_m: f64,
        seed: u64,
        contention: &ContentionModel,
    ) -> (usize, usize) {
        let graph = contention.sensing_graph(self.env, seed);
        let model = ChannelModel::new(self.env, seed);

        // Can the transmitters defer to each other at all?  Each AP's antennas
        // sense the aggregate energy of the other AP's full transmission; one
        // sensing antenna on either side is enough for CSMA to serialise
        // them.  The contention model only changes which threshold / sensing
        // field `graph` was built from.
        let transmitters_hear_each_other = ap1
            .antennas
            .iter()
            .any(|a| graph.senses_any(a, &ap2.antennas))
            || ap2
                .antennas
                .iter()
                .any(|b| graph.senses_any(b, &ap1.antennas));

        let points = self.region.grid_points(spacing_m);
        let total = points.len();
        if transmitters_hear_each_other {
            // CSMA suppresses the concurrent transmissions entirely; no spot
            // can experience a hidden-terminal collision.
            return (0, total);
        }

        let interference_threshold_dbm = self.env.noise_floor_dbm + 3.0;

        // Spot classification only compares the strongest mean RSSI against
        // the coverage (noise + SNR) and interference (noise + 3 dB)
        // thresholds, and mean RSSI is strictly decreasing in distance — so
        // an antenna beyond the distance where the mean power falls to the
        // *lower* of the two thresholds can never flip either boolean.
        // Query only that neighbourhood through a spatial index instead of
        // scanning every antenna per spot: O(spots·k) instead of O(spots·n).
        // Under the physical model interference enters the capture SINR
        // continuously rather than through a boolean, so the relevant range
        // extends to where interference drops 10 dB below the noise floor
        // (beyond that it moves the SINR by < 0.5 dB and cannot flip a
        // capture decision by more than the sub-dB tail).
        let interference_floor_dbm = match contention.physical() {
            None => interference_threshold_dbm,
            Some(_) => self.env.noise_floor_dbm - 10.0,
        };
        let lower_threshold_dbm =
            interference_floor_dbm.min(self.env.noise_floor_dbm + self.env.coverage_snr_db);
        let relevant_range_m = self
            .env
            .path_loss
            .distance_for_loss_db(self.env.tx_power_dbm - lower_threshold_dbm);
        let mut index = SpatialIndex::new(self.region, relevant_range_m);
        let mut owner_is_ap1 = Vec::new();
        for a in &ap1.antennas {
            index.insert(*a);
            owner_is_ap1.push(true);
        }
        for a in &ap2.antennas {
            index.insert(*a);
            owner_is_ap1.push(false);
        }

        let hidden = points
            .iter()
            .filter(|p| {
                let mut rx1 = f64::NEG_INFINITY;
                let mut rx2 = f64::NEG_INFINITY;
                for id in index.neighbors_within(p, relevant_range_m) {
                    let rx = model.mean_rx_power_dbm(&index.points()[id], p);
                    if owner_is_ap1[id] {
                        rx1 = rx1.max(rx);
                    } else {
                        rx2 = rx2.max(rx);
                    }
                }
                let covered_by_1 = rx1 - self.env.noise_floor_dbm >= self.env.coverage_snr_db;
                let covered_by_2 = rx2 - self.env.noise_floor_dbm >= self.env.coverage_snr_db;
                match contention.physical() {
                    // Binary model — hidden spot: served by one AP,
                    // interfered by the other (any overlap ⇒ collision).
                    None => {
                        (covered_by_1 && rx2 >= interference_threshold_dbm)
                            || (covered_by_2 && rx1 >= interference_threshold_dbm)
                    }
                    // Physical model — hidden spot: served by one AP at the
                    // MCS its interference-free SNR selects, and the other
                    // AP's interference defeats SINR capture at that MCS,
                    // so the overlap actually costs the frame.
                    // (`dbm_to_mw(NEG_INFINITY)` is 0, so an absent
                    // interferer contributes nothing.)
                    Some(phy) => {
                        let noise_mw = dbm_to_mw(self.env.noise_floor_dbm);
                        let collided = |signal_dbm: f64, interferer_dbm: f64| {
                            let expected_db = signal_dbm - self.env.noise_floor_dbm;
                            let realized_db =
                                signal_dbm - mw_to_dbm(noise_mw + dbm_to_mw(interferer_dbm));
                            !phy.frame_captured(expected_db, realized_db)
                        };
                        (covered_by_1 && collided(rx1, rx2)) || (covered_by_2 && collided(rx2, rx1))
                    }
                }
            })
            .count();
        (hidden, total)
    }

    /// Runs one paired CAS/DAS hidden-terminal comparison at the given grid
    /// spacing (the paper uses 1 m) under the given contention model — the
    /// single model-parameterised entry point.
    ///
    /// [`ContentionModel::Graph`] applies the paper's binary semantics (any
    /// coverage/interference overlap between mutually-hidden transmitters
    /// is a hidden spot); the physical model senses at its configurable
    /// threshold and only counts a spot as hidden when the collision
    /// defeats SINR capture — the §5.3.4 experiment as the Fig. 16
    /// calibration re-runs it.  Both draw the same RNG sequence, so
    /// switching models never perturbs the deployment stream.
    pub fn comparison(
        &self,
        spacing_m: f64,
        rng: &mut SimRng,
        contention: &ContentionModel,
    ) -> HiddenTerminalComparison {
        let seed = rng.next_u64();
        let (cas1, cas2) = self.deploy(DeploymentKind::Cas, rng);
        let (das1, das2) = self.deploy(DeploymentKind::Das, rng);
        let (cas_spots, total) = self.count_spots(&cas1, &cas2, spacing_m, seed, contention);
        let (das_spots, _) = self.count_spots(&das1, &das2, spacing_m, seed, contention);
        HiddenTerminalComparison {
            cas_spots,
            das_spots,
            total_spots: total,
        }
    }

    /// Deprecated alias of [`HiddenTerminalScenario::comparison`] under
    /// [`ContentionModel::Graph`].
    #[deprecated(
        since = "0.2.0",
        note = "use `comparison(spacing_m, rng, &ContentionModel::Graph)` \
                or drive the experiment through `midas::sim::ExperimentSpec`"
    )]
    pub fn compare(&self, spacing_m: f64, rng: &mut SimRng) -> HiddenTerminalComparison {
        self.comparison(spacing_m, rng, &ContentionModel::Graph)
    }

    /// Deprecated alias of [`HiddenTerminalScenario::comparison`].
    #[deprecated(
        since = "0.2.0",
        note = "use `comparison` — the model-parameterised entry point"
    )]
    pub fn compare_with_model(
        &self,
        spacing_m: f64,
        rng: &mut SimRng,
        contention: &ContentionModel,
    ) -> HiddenTerminalComparison {
        self.comparison(spacing_m, rng, contention)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_places_aps_beyond_carrier_sense_range() {
        let env = Environment::office_a();
        let s = HiddenTerminalScenario::new(env);
        let d = s.ap1_pos.distance(&s.ap2_pos);
        assert!(d > env.array_carrier_sense_range_m(4));
        assert!(s.region.contains(&s.ap1_pos));
        assert!(s.region.contains(&s.ap2_pos));
    }

    #[test]
    fn cas_has_hidden_terminal_spots() {
        // Shadowing occasionally lets the two CAS transmitters hear each other
        // even beyond the nominal sensing range, so aggregate a few trials:
        // across them the CAS deployment must exhibit hidden terminals.
        let env = Environment::office_a();
        let s = HiddenTerminalScenario::new(env);
        let mut rng = SimRng::new(1);
        let mut cas_total = 0usize;
        let mut spots_total = 0usize;
        for _ in 0..5 {
            let cmp = s.comparison(4.0, &mut rng, &ContentionModel::Graph);
            cas_total += cmp.cas_spots;
            spots_total += cmp.total_spots;
        }
        assert!(spots_total > 0);
        assert!(
            cas_total > 0,
            "CAS deployment should exhibit hidden terminals in this scenario"
        );
    }

    #[test]
    fn das_removes_most_hidden_terminal_spots_on_average() {
        let env = Environment::office_a();
        let s = HiddenTerminalScenario::new(env);
        let mut rng = SimRng::new(2);
        let mut cas_total = 0usize;
        let mut das_total = 0usize;
        for _ in 0..10 {
            let cmp = s.comparison(4.0, &mut rng, &ContentionModel::Graph);
            cas_total += cmp.cas_spots;
            das_total += cmp.das_spots;
        }
        assert!(cas_total > 0);
        let reduction = 1.0 - das_total as f64 / cas_total as f64;
        assert!(
            reduction > 0.5,
            "expected DAS to remove most hidden-terminal spots, got {:.0}% (CAS {cas_total}, DAS {das_total})",
            reduction * 100.0
        );
    }

    #[test]
    fn reduction_handles_zero_cas_spots() {
        let c = HiddenTerminalComparison {
            cas_spots: 0,
            das_spots: 0,
            total_spots: 10,
        };
        assert_eq!(c.reduction(), 0.0);
    }
}
