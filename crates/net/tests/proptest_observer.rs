//! Property tests for the streaming observer and traffic-model hooks.
//!
//! The load-bearing property is *exact equivalence*: streaming a simulation
//! through an [`Accumulate`] observer must reproduce the accumulate-in-place
//! [`TopologyResult`] bit for bit — same per-round capacities, same
//! per-client sums — across every {scan mode × contention model × MAC}
//! combination, and the fixed-size [`RunningSummary`] must agree with the
//! accumulated result on every sum it keeps.  The full-buffer traffic model
//! must be byte-identical to the pre-traffic-model simulator.
//!
//! The 64-AP / 512-client long-horizon test at the bottom is the
//! memory-bounded-streaming acceptance criterion: at 10× the default round
//! count the summary observer's heap footprint is *identical* to a
//! short run's — flat in rounds — while its metrics still match the
//! accumulating observer exactly.

use midas_net::capture::ContentionModel;
use midas_net::observer::{Accumulate, RunningSummary, Tee};
use midas_net::scale::Scenario;
use midas_net::simulator::{MacKind, NetworkSimulator, ScanMode, TopologyResult};
use midas_net::traffic::TrafficKind;
use proptest::prelude::*;

/// Runs one configured simulation twice — once through `run()` (the
/// accumulate-in-place path) and once streaming into `Accumulate` +
/// `RunningSummary` via a tee — and asserts exact agreement everywhere.
fn assert_streaming_matches_run(
    scenario: &Scenario,
    mac: MacKind,
    scan: ScanMode,
    contention: ContentionModel,
    rounds: usize,
    seed: u64,
) {
    let pair = scenario.build(seed).expect("buildable scenario");
    let topo = match mac {
        MacKind::Midas => pair.das,
        MacKind::Cas => pair.cas,
    };
    let mut config = scenario.sim_config(mac, rounds, seed);
    config.scan = scan;
    config.contention = contention;

    let direct = NetworkSimulator::new(topo.clone(), config).run();

    let mut acc = Accumulate::new();
    let mut summary = RunningSummary::new();
    {
        let mut tee = Tee::new(vec![&mut acc, &mut summary]);
        NetworkSimulator::new(topo, config).run_with(&mut tee);
    }
    let streamed = acc.into_result();

    assert_eq!(
        streamed,
        direct,
        "{} {mac:?} {scan:?}: streamed Accumulate diverged from run()",
        scenario.name()
    );
    assert_summary_matches(&summary, &direct);
}

/// The running summary's sums must equal the accumulated result's exactly:
/// identical additions in identical order.
fn assert_summary_matches(summary: &RunningSummary, result: &TopologyResult) {
    assert_eq!(summary.rounds(), result.per_round_capacity.len());
    assert_eq!(
        summary.capacity_sum(),
        result.per_round_capacity.iter().sum::<f64>()
    );
    assert_eq!(
        summary.streams_sum(),
        result.per_round_streams.iter().sum::<usize>()
    );
    assert_eq!(
        summary.per_client_capacity(),
        &result.per_client_capacity[..]
    );
    assert_eq!(
        summary.per_client_airtime_us(),
        &result.per_client_airtime_us[..]
    );
    assert_eq!(summary.per_ap_capacity(), &result.per_ap_capacity[..]);
    assert_eq!(
        summary.per_ap_active_rounds(),
        &result.per_ap_active_rounds[..]
    );
    assert_eq!(summary.per_ap_duty_cycle(), result.per_ap_duty_cycle());
    assert_eq!(summary.mean_streams(), result.mean_streams());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Streamed observers are bit-identical to the accumulate-in-place run
    /// across {scan mode × contention model × MAC} on random floors.
    #[test]
    fn streaming_is_bit_identical_across_the_config_matrix(
        seed in 0u64..1_000_000,
        scenario_sel in 0usize..3,
    ) {
        let scenario = match scenario_sel {
            0 => Scenario::enterprise_office(8),
            1 => Scenario::auditorium(8),
            _ => Scenario::dense_apartment(8),
        };
        for mac in [MacKind::Midas, MacKind::Cas] {
            for scan in [ScanMode::Indexed, ScanMode::BruteForce] {
                for contention in [
                    ContentionModel::Graph,
                    ContentionModel::physical_calibrated(),
                ] {
                    assert_streaming_matches_run(&scenario, mac, scan, contention, 4, seed);
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// An explicitly-installed full-buffer traffic model is byte-identical
    /// to the default (pre-traffic-model) simulator.
    #[test]
    fn explicit_full_buffer_reproduces_the_default(
        seed in 0u64..1_000_000,
    ) {
        let scenario = Scenario::enterprise_office(8);
        let pair = scenario.build(seed).expect("buildable scenario");
        let config = scenario.sim_config(MacKind::Midas, 4, seed);
        let default = NetworkSimulator::new(pair.das.clone(), config).run();
        let explicit = NetworkSimulator::new(pair.das, config)
            .with_traffic_kind(TrafficKind::FullBuffer)
            .run();
        prop_assert_eq!(default, explicit);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Lighter workloads stay physical: duty-cycled and queue-driven
    /// traffic never serve more streams than saturation does round-total,
    /// and zero-duty traffic silences the floor entirely.
    #[test]
    fn lighter_traffic_never_exceeds_saturation(
        seed in 0u64..1_000_000,
    ) {
        let scenario = Scenario::enterprise_office(8);
        let pair = scenario.build(seed).expect("buildable scenario");
        let config = scenario.sim_config(MacKind::Midas, 5, seed);
        let saturated = NetworkSimulator::new(pair.das.clone(), config).run();
        let duty = NetworkSimulator::new(pair.das.clone(), config)
            .with_traffic_kind(TrafficKind::OnOff { duty: 0.3, mean_burst_rounds: 3.0 })
            .run();
        let silent = NetworkSimulator::new(pair.das, config)
            .with_traffic_kind(TrafficKind::OnOff { duty: 0.0, mean_burst_rounds: 3.0 })
            .run();
        // Per-round stream counts under a thinned backlog can locally
        // exceed saturation's (different contention outcomes), but the
        // total service volume cannot: every served stream needs a
        // backlogged client, and 30% duty backlogs well under half the
        // client-rounds.
        let total = |r: &TopologyResult| r.per_round_streams.iter().sum::<usize>();
        prop_assert!(total(&duty) <= total(&saturated),
            "duty-cycled traffic served more streams ({}) than saturation ({})",
            total(&duty), total(&saturated));
        prop_assert_eq!(total(&silent), 0);
        prop_assert_eq!(silent.mean_capacity(), 0.0);
        prop_assert_eq!(silent.airtime_fairness(), 1.0);
    }
}

/// Acceptance criterion: a streamed 64-AP / 512-client run holds peak
/// memory flat in the round count.  The enterprise experiments default to
/// 10 rounds; this streams 100 (10×) and checks (i) the summary observer's
/// heap footprint is *byte-identical* to the 10-round run's, and (ii) its
/// metrics still agree exactly with the full accumulating observer.
#[test]
fn streamed_64_ap_run_holds_memory_flat_at_10x_rounds() {
    let scenario = Scenario::enterprise_office(64);
    assert_eq!(scenario.num_clients(), 512);
    let pair = scenario.build(3).expect("64-AP scenario builds");

    let footprint_at = |rounds: usize| {
        let config = scenario.sim_config(MacKind::Midas, rounds, 3);
        let mut summary = RunningSummary::new();
        NetworkSimulator::new(pair.das.clone(), config).run_with(&mut summary);
        (summary.heap_footprint_bytes(), summary)
    };

    let (short_bytes, _) = footprint_at(10);
    let (long_bytes, long_summary) = footprint_at(100);
    assert_eq!(long_summary.rounds(), 100);
    assert_eq!(
        short_bytes, long_bytes,
        "RunningSummary footprint grew with the round count"
    );

    // The streamed summary still matches the accumulating observer exactly
    // at the long horizon.
    let config = scenario.sim_config(MacKind::Midas, 100, 3);
    let full = NetworkSimulator::new(pair.das.clone(), config).run();
    assert_eq!(full.per_round_capacity.len(), 100);
    assert_summary_matches(&long_summary, &full);
    assert!(long_summary.mean_capacity() > 0.0);
}

/// Zero-round runs are well-defined everywhere (the NaN-or-panic
/// regression): summaries report 0.0 / empty / trivially-fair values.
#[test]
fn zero_round_run_has_well_defined_summaries() {
    let scenario = Scenario::enterprise_office(8);
    let pair = scenario.build(1).unwrap();
    let config = scenario.sim_config(MacKind::Midas, 0, 1);
    let result = NetworkSimulator::new(pair.das, config).run();
    assert!(result.per_round_capacity.is_empty());
    assert_eq!(result.mean_capacity(), 0.0);
    assert_eq!(result.mean_streams(), 0.0);
    assert_eq!(result.airtime_fairness(), 1.0);
    assert!(result.per_ap_duty_cycle().iter().all(|&d| d == 0.0));
    assert!(result.per_ap_mean_capacity().iter().all(|&c| c == 0.0));
    assert!(result.per_client_mean_capacity().iter().all(|&c| c == 0.0));
    assert!(result.mean_capacity().is_finite());
    assert!(result.airtime_fairness().is_finite());
}
