//! Property tests for the enterprise-scale subsystem (`midas_net::scale`).
//!
//! The load-bearing property is *exact equivalence*: the spatial-index scan
//! path must reproduce the brute-force O(n²) sweeps bit-for-bit — same
//! neighbourhood sets, same carrier-sense decisions (active sets), same
//! capacities — across random topologies, placements and interaction
//! ranges.  Everything the figures show therefore cannot depend on which
//! scan implementation ran.

use midas_channel::geometry::{Point, Rect};
use midas_channel::topology::{Topology, TopologyConfig};
use midas_channel::{Environment, SimRng};
use midas_net::contention::ContentionGraph;
use midas_net::scale::grid::ClientPlacement;
use midas_net::scale::{associate, AssociationPolicy, FloorGrid, Scenario, SpatialIndex};
use midas_net::simulator::{MacKind, NetworkSimulator, ScanMode};
use proptest::prelude::*;

/// Draws a random floor grid covering all three placement models.
fn random_grid(cols: usize, rows: usize, spacing: f64, placement_sel: usize) -> FloorGrid {
    let placement = match placement_sel % 3 {
        0 => ClientPlacement::Uniform,
        1 => ClientPlacement::Hotspot {
            clusters: 2,
            sigma_m: 4.0,
        },
        _ => ClientPlacement::Corridor { width_m: 3.0 },
    };
    FloorGrid {
        clients_per_ap: 4,
        placement,
        ..FloorGrid::new(cols, rows, spacing)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `SpatialIndex::neighbors_within` is set-identical (and, because both
    /// sides are id-sorted, sequence-identical) to the brute-force O(n²)
    /// pair scan, for random point clouds, query points and radii —
    /// including points outside the nominal bounds and infinite radii.
    #[test]
    fn spatial_index_matches_brute_force(
        seed in 0u64..1_000_000,
        n in 0usize..80,
        cell in 2.0f64..30.0,
        radius_sel in 0usize..8,
    ) {
        let region = Rect::new(Point::new(0.0, 0.0), 70.0, 50.0);
        let mut rng = SimRng::new(seed);
        let points: Vec<Point> = (0..n)
            .map(|_| Point::new(
                rng.uniform_range(-10.0, 80.0),
                rng.uniform_range(-10.0, 60.0),
            ))
            .collect();
        let index = SpatialIndex::from_points(region, cell, &points);
        let radius = match radius_sel {
            0 => 0.0,
            7 => f64::INFINITY,
            _ => rng.uniform_range(0.0, 60.0),
        };
        for _ in 0..5 {
            let q = Point::new(
                rng.uniform_range(-15.0, 85.0),
                rng.uniform_range(-15.0, 65.0),
            );
            prop_assert_eq!(
                index.neighbors_within(&q, radius),
                SpatialIndex::brute_force_within(&points, &q, radius)
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The indexed AP-adjacency construction equals the all-pairs
    /// range-limited sweep on random floor grids.
    #[test]
    fn indexed_ap_adjacency_matches_pairwise_sweep(
        seed in 0u64..1_000_000,
        cols in 1usize..5,
        rows in 1usize..4,
        spacing in 8.0f64..20.0,
    ) {
        let mut rng = SimRng::new(seed);
        let grid = random_grid(cols, rows, spacing, seed as usize);
        let topo = grid
            .generate(&TopologyConfig::das(4, 4), &mut rng)
            .expect("valid grid");
        let env = Environment::open_plan();
        let graph = ContentionGraph::new(env, seed);
        let cutoff = env.interaction_range_m(30.0);
        let indexed = graph.ap_adjacency_indexed(&topo, cutoff);
        let n = topo.aps.len();
        for (a, row) in indexed.iter().enumerate() {
            for (b, &adjacent) in row.iter().enumerate() {
                let brute = a != b && graph.aps_share_domain_within(&topo, a, b, cutoff);
                prop_assert_eq!(
                    adjacent, brute,
                    "APs {} and {} disagree between indexed and brute-force adjacency", a, b
                );
            }
        }
        prop_assert_eq!(indexed.len(), n);
    }
}

/// Runs one simulator variant under both scan modes and asserts the results
/// are bit-for-bit identical: same per-round stream counts (active sets),
/// same capacities, same airtime, same per-AP attribution.
fn assert_scan_modes_agree(scenario: &Scenario, mac: MacKind, rounds: usize, seed: u64) {
    let pair = scenario.build(seed).expect("buildable scenario");
    let topo = match mac {
        MacKind::Midas => pair.das,
        MacKind::Cas => pair.cas,
    };
    let mut indexed_cfg = scenario.sim_config(mac, rounds, seed);
    indexed_cfg.scan = ScanMode::Indexed;
    let mut brute_cfg = indexed_cfg;
    brute_cfg.scan = ScanMode::BruteForce;

    let indexed = NetworkSimulator::new(topo.clone(), indexed_cfg).run();
    let brute = NetworkSimulator::new(topo, brute_cfg).run();
    assert_eq!(
        indexed,
        brute,
        "{} {:?}: indexed and brute-force simulation diverged",
        scenario.name(),
        mac
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Full end-to-end equivalence of the two scan modes on every scenario
    /// family, both MACs, with the finite enterprise interaction range.
    #[test]
    fn simulator_scan_modes_are_bit_identical(
        seed in 0u64..1_000_000,
        scenario_sel in 0usize..3,
    ) {
        let scenario = match scenario_sel {
            0 => Scenario::enterprise_office(8),
            1 => Scenario::auditorium(8),
            _ => Scenario::dense_apartment(8),
        };
        for mac in [MacKind::Midas, MacKind::Cas] {
            assert_scan_modes_agree(&scenario, mac, 5, seed);
        }
    }
}

/// Mean RSSI (dBm) of the best antenna (or chassis) of `ap` at `p` — the
/// association metric, replayed independently of `midas_net`.
fn rssi_dbm(env: &Environment, topo: &Topology, ap: usize, p: &Point) -> f64 {
    let best_d = topo.aps[ap]
        .antennas
        .iter()
        .map(|a| a.distance(p))
        .fold(topo.aps[ap].position.distance(p), f64::min);
    env.tx_power_dbm - env.path_loss.path_loss_db(best_d)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The `LoadBalanced` tie-break is pinned to the lexicographic order
    /// `(current load, ap id)`, processed in client-id order.  An
    /// independent sequential replay over the same candidate radius must
    /// reproduce `associate`'s assignment exactly — in particular, the
    /// all-qualify window (infinite hysteresis) makes *every* candidate a
    /// tie on RSSI, so any instability in the tie-break would diverge.
    #[test]
    fn load_balanced_ties_resolve_in_stable_order(
        seed in 0u64..1_000_000,
        cols in 2usize..5,
        rows in 1usize..4,
        spacing in 8.0f64..18.0,
    ) {
        let mut rng = SimRng::new(seed);
        let grid = random_grid(cols, rows, spacing, seed as usize);
        let mut topo = grid
            .generate(&TopologyConfig::das(4, 4), &mut rng)
            .expect("valid grid");
        let env = Environment::open_plan();

        // Independent replay: per client in id order, the pick is the least
        // `(load-so-far, ap id)` among the APs with an antenna or chassis
        // inside the candidate radius (everything, if none is in range).
        let radius = 2.0 * env.coverage_range_m();
        let mut loads = vec![0usize; topo.aps.len()];
        let mut expected = Vec::with_capacity(topo.clients.len());
        for c in &topo.clients {
            let mut cands: Vec<usize> = (0..topo.aps.len())
                .filter(|&ap| {
                    let chassis = topo.aps[ap].position.distance(&c.position);
                    topo.aps[ap]
                        .antennas
                        .iter()
                        .map(|a| a.distance(&c.position))
                        .fold(chassis, f64::min)
                        <= radius
                })
                .collect();
            if cands.is_empty() {
                cands = (0..topo.aps.len()).collect();
            }
            let pick = cands
                .into_iter()
                .min_by_key(|&ap| (loads[ap], ap))
                .expect("at least one AP");
            loads[pick] += 1;
            expected.push(pick);
        }

        associate(
            &mut topo,
            &env,
            AssociationPolicy::LoadBalanced { hysteresis_db: f64::INFINITY },
        );
        let got: Vec<usize> = topo.clients.iter().map(|c| c.ap_id).collect();
        prop_assert_eq!(got, expected);
    }

    /// With a *finite* window the pick must still be the least
    /// `(load, ap id)` among the in-window candidates at its turn — no
    /// client may sit on an AP while a strictly smaller qualifying pair
    /// existed when it was processed.
    #[test]
    fn load_balanced_picks_are_minimal_inside_the_window(
        seed in 0u64..1_000_000,
        hysteresis in 0.0f64..20.0,
    ) {
        let mut rng = SimRng::new(seed);
        let grid = random_grid(3, 2, 14.0, seed as usize);
        let mut topo = grid
            .generate(&TopologyConfig::das(4, 4), &mut rng)
            .expect("valid grid");
        let env = Environment::open_plan();
        associate(
            &mut topo,
            &env,
            AssociationPolicy::LoadBalanced { hysteresis_db: hysteresis },
        );

        // Replay the loads in client-id order and check minimality at each
        // step, over the same candidate radius `associate` used.
        let radius = 2.0 * env.coverage_range_m();
        let mut loads = vec![0usize; topo.aps.len()];
        for c in &topo.clients {
            let mut cands: Vec<usize> = (0..topo.aps.len())
                .filter(|&ap| {
                    let chassis = topo.aps[ap].position.distance(&c.position);
                    topo.aps[ap]
                        .antennas
                        .iter()
                        .map(|a| a.distance(&c.position))
                        .fold(chassis, f64::min)
                        <= radius
                })
                .collect();
            if cands.is_empty() {
                cands = (0..topo.aps.len()).collect();
            }
            let best = cands
                .iter()
                .map(|&ap| rssi_dbm(&env, &topo, ap, &c.position))
                .fold(f64::NEG_INFINITY, f64::max);
            let window: Vec<usize> = cands
                .into_iter()
                .filter(|&ap| rssi_dbm(&env, &topo, ap, &c.position) >= best - hysteresis)
                .collect();
            prop_assert!(window.contains(&c.ap_id), "client {} landed outside its window", c.id);
            let min = window
                .into_iter()
                .min_by_key(|&ap| (loads[ap], ap))
                .expect("non-empty window");
            prop_assert_eq!(
                (loads[c.ap_id], c.ap_id), (loads[min], min),
                "client {} took a non-minimal (load, ap) pair", c.id
            );
            loads[c.ap_id] += 1;
        }
    }
}

#[test]
fn scan_modes_agree_with_infinite_interaction_range_too() {
    // The paper-scale figures run untruncated.  An infinite radius gives the
    // index nothing to prune, so the config resolves it away internally —
    // this pins that the resolution really is output-neutral.
    let scenario = Scenario::enterprise_office(8);
    let pair = scenario.build(77).unwrap();
    let mut indexed_cfg = scenario.sim_config(MacKind::Midas, 5, 77);
    indexed_cfg.interaction_range_m = f64::INFINITY;
    indexed_cfg.scan = ScanMode::Indexed;
    let mut brute_cfg = indexed_cfg;
    brute_cfg.scan = ScanMode::BruteForce;
    let indexed = NetworkSimulator::new(pair.das.clone(), indexed_cfg).run();
    let brute = NetworkSimulator::new(pair.das, brute_cfg).run();
    assert_eq!(indexed, brute);
}

#[test]
fn a_64_ap_512_client_scenario_completes_quickly() {
    // Acceptance criterion: a full 64-AP / 512-client `NetworkSimulator`
    // run finishes in seconds.  The test budget is generous so CI noise
    // cannot flake it; locally this takes well under 10 s.
    let scenario = Scenario::enterprise_office(64);
    assert_eq!(scenario.num_aps(), 64);
    assert_eq!(scenario.num_clients(), 512);
    // lint: allow(wall-clock) — test-side perf guard: times the brute-force sweep to
    // assert the spatial index is not slower; never feeds a simulation result.
    let start = std::time::Instant::now();
    let pair = scenario.build(1).expect("64-AP scenario builds");
    let mut sim = NetworkSimulator::new(pair.das, scenario.sim_config(MacKind::Midas, 10, 1));
    let result = sim.run();
    let elapsed = start.elapsed();
    assert_eq!(result.per_round_capacity.len(), 10);
    assert!(result.mean_capacity() > 0.0 && result.mean_capacity().is_finite());
    assert_eq!(result.per_ap_capacity.len(), 64);
    // MIDAS at enterprise scale reuses spectrum: many APs transmit per round.
    assert!(
        result.mean_streams() > 8.0,
        "streams {}",
        result.mean_streams()
    );
    assert!(
        elapsed.as_secs() < 60,
        "64-AP run took {elapsed:?} — spatial index not effective"
    );
}
