//! Property tests for the staged round pipeline's [`RoundWorkspace`].
//!
//! The load-bearing property is *exact equivalence*: a simulator that reuses
//! one workspace across every round (the default — steady state allocates
//! nothing) must reproduce a simulator that rebuilds the workspace from
//! scratch each round bit-for-bit, across both scan modes, both contention
//! models, both MACs and both traffic extremes.  The second property pins the
//! allocation discipline itself: after a warm-up run, further rounds must not
//! grow the workspace's heap footprint.

use midas_net::capture::ContentionModel;
use midas_net::scale::Scenario;
use midas_net::simulator::{MacKind, NetworkSimulator, ScanMode};
use midas_net::traffic::TrafficKind;
use proptest::prelude::*;

/// Builds the paired simulator inputs for one configuration point.
#[allow(clippy::too_many_arguments)] // test helper: the grid IS the arguments
fn build_sim(
    scenario: &Scenario,
    mac: MacKind,
    scan: ScanMode,
    contention: ContentionModel,
    traffic: TrafficKind,
    rounds: usize,
    seed: u64,
    fresh_per_round: bool,
) -> NetworkSimulator {
    let pair = scenario.build(seed).expect("buildable scenario");
    let topo = match mac {
        MacKind::Midas => pair.das,
        MacKind::Cas => pair.cas,
    };
    let mut config = scenario.sim_config(mac, rounds, seed);
    config.scan = scan;
    config.contention = contention;
    let sim = NetworkSimulator::new(topo, config).with_traffic_kind(traffic);
    if fresh_per_round {
        sim.with_fresh_workspace_per_round()
    } else {
        sim
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Reusing the round workspace is bit-identical to rebuilding it every
    /// round, over the full `{scan} × {contention} × {mac} × {traffic}`
    /// grid at random seeds.
    #[test]
    fn reused_workspace_is_bit_identical_to_fresh_per_round(
        seed in 0u64..1_000_000,
        scan_sel in 0usize..2,
        contention_sel in 0usize..2,
        traffic_sel in 0usize..2,
    ) {
        let scenario = Scenario::enterprise_office(8);
        let scan = if scan_sel == 0 { ScanMode::Indexed } else { ScanMode::BruteForce };
        let contention = if contention_sel == 0 {
            ContentionModel::Graph
        } else {
            ContentionModel::physical_calibrated()
        };
        // The traffic extremes: saturation (every client, every round) and a
        // sparse duty-cycled workload (many empty backlogs, silent APs).
        let traffic = if traffic_sel == 0 {
            TrafficKind::FullBuffer
        } else {
            TrafficKind::OnOff { duty: 0.2, mean_burst_rounds: 2.0 }
        };
        for mac in [MacKind::Midas, MacKind::Cas] {
            let reused = build_sim(
                &scenario, mac, scan, contention, traffic, 6, seed, false,
            ).run();
            let fresh = build_sim(
                &scenario, mac, scan, contention, traffic, 6, seed, true,
            ).run();
            prop_assert_eq!(
                &reused, &fresh,
                "{:?}/{:?}/{:?}/{:?}: reused workspace diverged from fresh-per-round",
                mac, scan, contention, traffic
            );
        }
    }
}

#[test]
fn queued_traffic_agrees_between_reused_and_fresh_workspaces() {
    // Poisson keeps cross-round queue state, the stickiest case for the
    // served/unserved bookkeeping rewrite — pin it separately.
    let scenario = Scenario::enterprise_office(8);
    let traffic = TrafficKind::Poisson {
        mean_arrivals_per_round: 0.4,
    };
    for mac in [MacKind::Midas, MacKind::Cas] {
        let reused = build_sim(
            &scenario,
            mac,
            ScanMode::Indexed,
            ContentionModel::Graph,
            traffic,
            10,
            42,
            false,
        )
        .run();
        let fresh = build_sim(
            &scenario,
            mac,
            ScanMode::Indexed,
            ContentionModel::Graph,
            traffic,
            10,
            42,
            true,
        )
        .run();
        assert_eq!(reused, fresh, "{mac:?}: Poisson queues diverged");
    }
}

#[test]
fn steady_state_rounds_do_not_grow_the_workspace() {
    // After one full run every scratch buffer has seen its worst case; a
    // second identical run must find every capacity already sufficient, so
    // the workspace's self-reported heap footprint cannot move.  This is the
    // allocation-discipline guarantee behind "steady state allocates
    // nothing": any per-round `Vec::push` past a warm capacity would show up
    // here as footprint growth.
    for (mac, contention) in [
        (MacKind::Midas, ContentionModel::Graph),
        (MacKind::Midas, ContentionModel::physical_calibrated()),
        (MacKind::Cas, ContentionModel::Graph),
    ] {
        let scenario = Scenario::enterprise_office(8);
        let mut sim = build_sim(
            &scenario,
            mac,
            ScanMode::Indexed,
            contention,
            TrafficKind::FullBuffer,
            8,
            7,
            false,
        );
        let cold = sim.workspace_heap_footprint_bytes();
        // Two warm-up runs: buffer capacities are high-water marks, and the
        // channels keep evolving between runs, so the very first run may not
        // see the worst case (e.g. a busier spatial-index cell).  Everything
        // is seeded, so the fixed point below is deterministic.
        let first = sim.run();
        let second = sim.run();
        let warm = sim.workspace_heap_footprint_bytes();
        assert!(
            warm >= cold,
            "{mac:?}/{contention:?}: warm footprint {warm} below cold {cold}"
        );
        let third = sim.run();
        let steady = sim.workspace_heap_footprint_bytes();
        assert_eq!(
            warm, steady,
            "{mac:?}/{contention:?}: footprint grew after warm-up — a round allocated"
        );
        // Each run re-evolves the channels from where the last left off, so
        // the series differ — but all must be complete and finite.
        assert_eq!(first.per_round_capacity.len(), 8);
        assert_eq!(second.per_round_capacity.len(), 8);
        assert_eq!(third.per_round_capacity.len(), 8);
        assert!(third.mean_capacity().is_finite());
    }
}
