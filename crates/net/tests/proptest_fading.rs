//! Property tests for the counter-keyed fading engine
//! ([`FadingEngine::Counter`]).
//!
//! The engine's whole value proposition is order-independence: because every
//! small-scale innovation is a pure function of `(trial_seed, ap, link,
//! round)`, the simulator may evolve channel rows lazily (only the rows a
//! round actually reads, caught up boundary by boundary) and in parallel
//! (any thread count) without changing a single bit of the results.  The
//! first two properties pin exactly that, over the same
//! `{scan} × {contention} × {mac} × {traffic}` grid the workspace
//! equivalence tests use.  The third pins what the engines *share*: both
//! realise the same first-order Gauss–Markov process, so evolved fading
//! must keep unit mean power and show lag-1 autocorrelation `rho` under
//! either engine.

use midas_channel::{ChannelModel, Environment, FadingEngine, Point};
use midas_linalg::Complex;
use midas_net::capture::ContentionModel;
use midas_net::scale::Scenario;
use midas_net::simulator::{MacKind, NetworkSimulator, ScanMode};
use midas_net::traffic::TrafficKind;
use proptest::prelude::*;

/// Builds a counter-engine simulator for one configuration point.
#[allow(clippy::too_many_arguments)] // test helper: the grid IS the arguments
fn build_counter_sim(
    scenario: &Scenario,
    mac: MacKind,
    scan: ScanMode,
    contention: ContentionModel,
    traffic: TrafficKind,
    rounds: usize,
    seed: u64,
    evolve_threads: usize,
    eager: bool,
) -> NetworkSimulator {
    let pair = scenario.build(seed).expect("buildable scenario");
    let topo = match mac {
        MacKind::Midas => pair.das,
        MacKind::Cas => pair.cas,
    };
    let mut config = scenario.sim_config(mac, rounds, seed);
    config.scan = scan;
    config.contention = contention;
    config.fading = FadingEngine::Counter;
    config.evolve_threads = evolve_threads;
    let sim = NetworkSimulator::new(topo, config).with_traffic_kind(traffic);
    if eager {
        sim.with_eager_counter_evolve()
    } else {
        sim
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Lazy active-set evolution (only the rows a round reads, with keyed
    /// catch-up) is bit-identical to eagerly evolving every in-range row at
    /// every coherence boundary, over the full
    /// `{scan} × {contention} × {mac} × {traffic}` grid at random seeds.
    #[test]
    fn lazy_evolution_is_bit_identical_to_eager(
        seed in 0u64..1_000_000,
        scan_sel in 0usize..2,
        contention_sel in 0usize..2,
        traffic_sel in 0usize..2,
    ) {
        let scenario = Scenario::enterprise_office(8);
        let scan = if scan_sel == 0 { ScanMode::Indexed } else { ScanMode::BruteForce };
        let contention = if contention_sel == 0 {
            ContentionModel::Graph
        } else {
            ContentionModel::physical_calibrated()
        };
        // Saturation exercises dense touched sets; the sparse duty-cycled
        // workload leaves many rows untouched for long stretches, which is
        // where lazy catch-up has to replay several boundaries at once.
        let traffic = if traffic_sel == 0 {
            TrafficKind::FullBuffer
        } else {
            TrafficKind::OnOff { duty: 0.2, mean_burst_rounds: 2.0 }
        };
        for mac in [MacKind::Midas, MacKind::Cas] {
            let lazy = build_counter_sim(
                &scenario, mac, scan, contention, traffic, 6, seed, 1, false,
            ).run();
            let eager = build_counter_sim(
                &scenario, mac, scan, contention, traffic, 6, seed, 1, true,
            ).run();
            prop_assert_eq!(
                &lazy, &eager,
                "{:?}/{:?}/{:?}/{:?}: lazy evolution diverged from eager",
                mac, scan, contention, traffic
            );
        }
    }

    /// Intra-trial parallel evolve is bit-identical to serial: the full
    /// `TopologyResult` at 4 evolve threads equals the 1-thread run.
    #[test]
    fn parallel_evolve_is_bit_identical_to_serial(
        seed in 0u64..1_000_000,
        contention_sel in 0usize..2,
    ) {
        let scenario = Scenario::enterprise_office(8);
        let contention = if contention_sel == 0 {
            ContentionModel::Graph
        } else {
            ContentionModel::physical_calibrated()
        };
        for mac in [MacKind::Midas, MacKind::Cas] {
            let serial = build_counter_sim(
                &scenario, mac, ScanMode::Indexed, contention,
                TrafficKind::FullBuffer, 6, seed, 1, false,
            ).run();
            let parallel = build_counter_sim(
                &scenario, mac, ScanMode::Indexed, contention,
                TrafficKind::FullBuffer, 6, seed, 4, false,
            ).run();
            prop_assert_eq!(
                &serial, &parallel,
                "{:?}/{:?}: 4-thread evolve diverged from serial",
                mac, contention
            );
        }
    }
}

/// Evolves one realisation `steps` times under the given engine, returning
/// the large-scale-normalised fading coefficient of every link at every
/// step (the unit-power CN process both engines must realise).
fn evolved_coefficients(
    engine: FadingEngine,
    steps: usize,
    seed: u64,
    delay_s: f64,
) -> Vec<Vec<Complex>> {
    let mut model = ChannelModel::new(Environment::office_a(), seed);
    // A 4-antenna DAS-like spread with a grid of clients: metres of antenna
    // separation keeps the initial realisation's spatial correlation low.
    let antennas = [
        Point::new(5.0, 5.0),
        Point::new(35.0, 5.0),
        Point::new(5.0, 35.0),
        Point::new(35.0, 35.0),
    ];
    let clients: Vec<Point> = (0..25)
        .map(|i| Point::new(4.0 + 6.4 * (i % 5) as f64, 4.0 + 6.4 * (i / 5) as f64))
        .collect();
    let mut channel = model.realize_positions(&antennas, &clients);
    let normalised = |ch: &midas_channel::ChannelMatrix| -> Vec<Complex> {
        let mut out = Vec::new();
        for j in 0..ch.num_clients() {
            for k in 0..ch.num_antennas() {
                let g = ch.large_scale.get(j, k);
                out.push(ch.h.get(j, k).scale(1.0 / g));
            }
        }
        out
    };
    let mut pairs = Vec::new();
    let mut series = Vec::with_capacity(steps);
    for step in 0..steps {
        match engine {
            FadingEngine::Legacy => model.evolve_in_place(&mut channel, delay_s),
            FadingEngine::Counter => {
                model.evolve_in_place_counter(&mut channel, delay_s, 0, step as u64, &mut pairs)
            }
        }
        series.push(normalised(&channel));
    }
    series
}

#[test]
fn both_engines_realise_unit_power_gauss_markov_fading() {
    // Statistical bands shared by both engines: the evolved unit-power
    // coefficients must keep E[|f|^2] = 1 and show lag-1 autocorrelation
    // Re E[f_t conj(f_{t-1})] / E[|f|^2] = rho.  ~10 ms steps in an office
    // coherence time give a rho well inside (0, 1), so both failure modes
    // (frozen channel rho->1, iid redraw rho->0) sit far outside the band.
    let delay_s = 0.010;
    let steps = 400;
    for engine in [FadingEngine::Legacy, FadingEngine::Counter] {
        let model = ChannelModel::new(Environment::office_a(), 9);
        let rho = model.step_correlation(delay_s);
        assert!(rho > 0.2 && rho < 0.98, "step rho {rho} outside test band");
        let series = evolved_coefficients(engine, steps, 9, delay_s);
        let links = series[0].len();
        let mut power_sum = 0.0;
        let mut corr_sum = 0.0;
        let mut corr_n = 0usize;
        for t in 0..steps {
            for (l, f) in series[t].iter().enumerate() {
                power_sum += f.norm_sqr();
                if t > 0 {
                    corr_sum += (*f * series[t - 1][l].conj()).re;
                    corr_n += 1;
                }
            }
        }
        let mean_power = power_sum / (steps * links) as f64;
        let autocorr = corr_sum / corr_n as f64 / mean_power;
        assert!(
            (mean_power - 1.0).abs() < 0.05,
            "{engine:?}: evolved mean power {mean_power} not ~1"
        );
        assert!(
            (autocorr - rho).abs() < 0.05,
            "{engine:?}: lag-1 autocorrelation {autocorr} vs rho {rho}"
        );
    }
}

#[test]
fn counter_engine_differs_from_legacy_but_is_deterministic() {
    // Opting into the counter engine changes per-draw values (statistics,
    // not goldens, are the contract) — but it is exactly reproducible.
    let scenario = Scenario::enterprise_office(8);
    let legacy = {
        let pair = scenario.build(3).expect("buildable scenario");
        let config = scenario.sim_config(MacKind::Midas, 6, 3);
        NetworkSimulator::new(pair.das, config).run()
    };
    let counter = build_counter_sim(
        &scenario,
        MacKind::Midas,
        ScanMode::Indexed,
        ContentionModel::Graph,
        TrafficKind::FullBuffer,
        6,
        3,
        1,
        false,
    )
    .run();
    let counter_again = build_counter_sim(
        &scenario,
        MacKind::Midas,
        ScanMode::Indexed,
        ContentionModel::Graph,
        TrafficKind::FullBuffer,
        6,
        3,
        1,
        false,
    )
    .run();
    assert_eq!(
        counter, counter_again,
        "counter engine must be deterministic"
    );
    assert_ne!(
        legacy, counter,
        "counter engine unexpectedly reproduced the legacy draw sequence"
    );
    assert!(counter.mean_capacity().is_finite() && counter.mean_capacity() > 0.0);
}
