//! Property tests for the physical carrier-sense & capture subsystem
//! (`midas_net::capture`).
//!
//! Three load-bearing properties:
//!
//! * **CS-threshold monotonicity** — raising the energy-detect threshold
//!   can only *remove* contention-graph edges, never add one.  The
//!   Fig. 16 calibration sweeps the threshold assuming this (a stricter
//!   CCA means a denser contention graph, monotonically).
//! * **Capture monotonicity** — for any fixed rate-adaptation expectation,
//!   frame capture is monotone in the realized SINR; and a larger capture
//!   margin never *lowers* the realized SINR a frame needs.
//! * **Legacy equivalence** — `ContentionModel::Graph` builds a sensing
//!   graph bit-identical to the legacy `ContentionGraph::new`, so every
//!   pre-capture golden stays pinned by construction.

use midas_channel::topology::TopologyConfig;
use midas_channel::{Environment, SimRng};
use midas_net::capture::{ContentionModel, PhysicalConfig};
use midas_net::contention::ContentionGraph;
use midas_net::deployment::{paper_das_config, PairedTopology};
use proptest::prelude::*;

fn env_for(sel: usize) -> Environment {
    match sel % 3 {
        0 => Environment::office_a(),
        1 => Environment::office_b(),
        _ => Environment::open_plan(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Raising the CS threshold never adds a contention-graph edge, on
    /// either variant of a random paired 3-AP topology: the edge sets are
    /// nested exactly as the thresholds are ordered.
    #[test]
    fn raising_cs_threshold_never_adds_edges(
        seed in 0u64..1_000_000,
        env_sel in 0usize..3,
        low_dbm in -95.0f64..-80.0,
        delta_db in 0.0f64..20.0,
    ) {
        let env = env_for(env_sel);
        let mut rng = SimRng::new(seed);
        let pair = PairedTopology::three_ap(&paper_das_config(&env, 4, 4), &mut rng);
        let strict = ContentionGraph::with_threshold(env, low_dbm, seed);
        let lax = ContentionGraph::with_threshold(env, low_dbm + delta_db, seed);
        prop_assert_eq!(strict.threshold_dbm(), low_dbm);
        for topo in [&pair.cas, &pair.das] {
            let dense = strict.ap_adjacency(topo);
            let sparse = lax.ap_adjacency(topo);
            for (a, row) in sparse.iter().enumerate() {
                for (b, &edge) in row.iter().enumerate() {
                    prop_assert!(
                        !edge || dense[a][b],
                        "edge {}-{} exists at {} dBm but not at {} dBm",
                        a, b, low_dbm + delta_db, low_dbm
                    );
                }
            }
        }
    }

    /// Capture success is monotone in the realized SINR for any fixed
    /// rate-adaptation expectation, and the threshold a frame must clear
    /// is monotone in the capture margin.
    #[test]
    fn capture_is_monotone_in_sinr_and_margin(
        expected_db in -5.0f64..45.0,
        realized_db in -15.0f64..45.0,
        step_db in 0.0f64..20.0,
        margin_db in 0.0f64..12.0,
        margin_step_db in 0.0f64..8.0,
    ) {
        let p = PhysicalConfig {
            cs_threshold_dbm: -86.0,
            capture_margin_db: margin_db,
            sensing_sigma_db: None,
        };
        // More realized SINR can only help.
        if p.frame_captured(expected_db, realized_db) {
            prop_assert!(p.frame_captured(expected_db, realized_db + step_db));
        }
        // An interference-free frame (realized == expected) always
        // captures whenever the link is strong enough to transmit at all,
        // and survives degradation up to the margin.
        if p.select_mcs(expected_db).is_some() {
            prop_assert!(p.frame_captured(expected_db, expected_db));
            prop_assert!(p.frame_captured(expected_db, expected_db - margin_db));
        }
        // A larger margin selects an MCS that is never harder to decode.
        let wider = PhysicalConfig {
            capture_margin_db: margin_db + margin_step_db,
            ..p
        };
        match (p.select_mcs(expected_db), wider.select_mcs(expected_db)) {
            (_, None) => {}
            (Some(base), Some(conservative)) => {
                prop_assert!(conservative.min_sinr_db <= base.min_sinr_db);
            }
            (None, Some(_)) => prop_assert!(false, "wider margin cannot unlock a link"),
        }
        prop_assert!(wider.capture_threshold_db() >= p.capture_threshold_db());
    }

    /// `ContentionModel::Graph` reproduces the legacy contention graph
    /// bit-for-bit on a random paired topology: same adjacency matrix,
    /// same per-point sensing decisions.
    #[test]
    fn graph_model_reproduces_legacy_adjacency(
        seed in 0u64..1_000_000,
        env_sel in 0usize..3,
    ) {
        let env = env_for(env_sel);
        let mut rng = SimRng::new(seed);
        let pair = PairedTopology::three_ap(&TopologyConfig::das(4, 4), &mut rng);
        let legacy = ContentionGraph::new(env, seed ^ 0x5151);
        let modelled = ContentionModel::Graph.sensing_graph(env, seed ^ 0x5151);
        for topo in [&pair.cas, &pair.das] {
            prop_assert_eq!(legacy.ap_adjacency(topo), modelled.ap_adjacency(topo));
            for ap in &topo.aps {
                for antenna in &ap.antennas {
                    prop_assert_eq!(
                        legacy.senses_any(antenna, &topo.aps[0].antennas),
                        modelled.senses_any(antenna, &topo.aps[0].antennas)
                    );
                }
            }
        }
    }

    /// Regression companion to the `SpatialIndex` infinite-cell fix: the
    /// indexed AP adjacency with an *infinite* cutoff (which sizes the
    /// index's cells from the bounding box instead of building a
    /// degenerate one-cell grid) equals the unbounded pairwise sweep.
    #[test]
    fn indexed_adjacency_with_infinite_cutoff_matches_unbounded(
        seed in 0u64..1_000_000,
        env_sel in 0usize..3,
    ) {
        let env = env_for(env_sel);
        let mut rng = SimRng::new(seed);
        let pair = PairedTopology::three_ap(&paper_das_config(&env, 4, 4), &mut rng);
        let graph = ContentionGraph::new(env, seed);
        prop_assert_eq!(
            graph.ap_adjacency_indexed(&pair.das, f64::INFINITY),
            graph.ap_adjacency(&pair.das)
        );
    }
}
