//! Long-horizon dynamics suite: a network that runs for 10⁵ rounds with
//! mobility, roaming and churn must stay flat in memory, bit-identical
//! across evolve-thread counts, and — with dynamics off — byte-identical
//! to the static simulator.
//!
//! These are the acceptance tests for the dynamics layer: everything here
//! runs on a deliberately tiny floor (2 APs, 8 clients) so the 10⁵-round
//! horizon stays debug-build friendly; the *scale* axis is covered by
//! `proptest_scale.rs` and the bench suite.

use midas_channel::topology::{Topology, TopologyConfig};
use midas_channel::{Environment, FadingEngine, SimRng};
use midas_net::dynamics::DynamicsSpec;
use midas_net::observer::RunningSummary;
use midas_net::scale::FloorGrid;
use midas_net::simulator::{NetworkSimConfig, NetworkSimulator};
use midas_net::traffic::TrafficKind;

/// 2-AP / 8-client DAS floor — small enough that 10⁵ debug rounds are fast.
fn tiny_floor(seed: u64) -> (Topology, Environment) {
    let mut rng = SimRng::new(seed);
    let grid = FloorGrid {
        clients_per_ap: 4,
        ..FloorGrid::new(2, 1, 15.0)
    };
    let topo = grid
        .generate(&TopologyConfig::das(2, 2), &mut rng)
        .expect("valid grid");
    (topo, Environment::open_plan())
}

/// Roaming walkers plus churn traffic under the counter engine.
fn dynamic_sim(rounds: usize, seed: u64, evolve_threads: usize) -> NetworkSimulator {
    let (topo, env) = tiny_floor(seed);
    let mut config = NetworkSimConfig::midas(env, seed);
    config.rounds = rounds;
    config.fading = FadingEngine::Counter;
    config.evolve_threads = evolve_threads;
    config.dynamics = Some(DynamicsSpec::roaming_walk(1.4));
    NetworkSimulator::new(topo, config).with_traffic_kind(TrafficKind::Churn {
        attached_fraction: 0.7,
        mean_session_rounds: 30.0,
    })
}

#[test]
fn a_hundred_thousand_round_run_is_flat_in_memory() {
    // Warm up, snapshot every retained-heap account, then run a 100 000
    // round horizon through a fixed-size observer: nothing may grow.  This
    // is the long-horizon acceptance criterion — session memory is
    // O(network size), not O(rounds).  Warm-up is 20 000 rounds because
    // the last high-water marks (worst-case handoff membership, waypoint
    // clustering) are rare events, not first-round allocations.
    let mut sim = dynamic_sim(20_000, 42, 1);
    let mut warm_summary = RunningSummary::new();
    sim.run_with(&mut warm_summary);
    let warm_workspace = sim.workspace_heap_footprint_bytes();
    let warm_dynamics = sim.dynamics_heap_footprint_bytes();

    let mut long = dynamic_sim(100_000, 42, 1);
    let mut summary = RunningSummary::new();
    long.run_with(&mut summary);
    assert_eq!(summary.rounds(), 100_000);
    assert_eq!(
        long.workspace_heap_footprint_bytes(),
        warm_workspace,
        "workspace grew between the warm snapshot and 10^5 rounds"
    );
    assert_eq!(
        long.dynamics_heap_footprint_bytes(),
        warm_dynamics,
        "dynamics state grew between the warm snapshot and 10^5 rounds"
    );
    assert_eq!(
        summary.heap_footprint_bytes(),
        warm_summary.heap_footprint_bytes(),
        "the streaming observer's footprint must not depend on the horizon"
    );

    // And the horizon was genuinely dynamic: clients moved and handed off.
    let (moves, handoffs) = long.dynamics_stats().expect("dynamics are on");
    assert!(moves > 0, "nobody moved in 10^5 rounds");
    assert!(handoffs > 0, "nobody handed off in 10^5 rounds");
    assert!(summary.capacity_sum() > 0.0);
}

#[test]
fn dynamic_runs_are_bit_identical_across_evolve_thread_counts() {
    // Mobility, roaming and churn all draw from dedicated RNG streams, and
    // counter-engine evolution is keyed rather than sequenced — so a
    // 4-thread run must reproduce the single-thread run bit for bit.
    let serial = dynamic_sim(400, 7, 1).run();
    let parallel = dynamic_sim(400, 7, 4).run();
    assert_eq!(serial, parallel);
}

#[test]
fn dynamic_runs_are_deterministic_in_the_seed() {
    let a = dynamic_sim(300, 11, 2).run();
    let b = dynamic_sim(300, 11, 2).run();
    assert_eq!(a, b);
}

#[test]
fn dynamics_off_is_byte_identical_to_the_static_simulator() {
    // `config.dynamics = None` must take exactly the legacy code path:
    // same draws, same rows, same bytes.  (An *inactive* spec is filtered
    // to `None` at the session layer — `Some` always switches to dense
    // channel rows, which re-keys nothing but allocates differently, so
    // the byte-identity contract lives on `None`.)
    let (topo, env) = tiny_floor(5);
    let mut config = NetworkSimConfig::midas(env, 5);
    config.rounds = 50;
    let static_run = NetworkSimulator::new(topo.clone(), config).run();
    assert!(config.dynamics.is_none());
    let again = NetworkSimulator::new(topo, config).run();
    assert_eq!(static_run, again);
}

#[test]
fn a_long_static_run_with_churn_stays_flat_too() {
    // Churn alone (no mobility) exercises the queue/session bookkeeping on
    // the long horizon; it must be as allocation-flat as the dynamic path.
    let build = |rounds: usize| {
        let (topo, env) = tiny_floor(13);
        let mut config = NetworkSimConfig::midas(env, 13);
        config.rounds = rounds;
        NetworkSimulator::new(topo, config).with_traffic_kind(TrafficKind::Churn {
            attached_fraction: 0.5,
            mean_session_rounds: 20.0,
        })
    };
    let mut warm = build(1_000);
    let mut warm_summary = RunningSummary::new();
    warm.run_with(&mut warm_summary);

    let mut long = build(100_000);
    let mut summary = RunningSummary::new();
    long.run_with(&mut summary);
    assert_eq!(
        long.workspace_heap_footprint_bytes(),
        warm.workspace_heap_footprint_bytes()
    );
    assert_eq!(
        summary.heap_footprint_bytes(),
        warm_summary.heap_footprint_bytes()
    );
    assert_eq!(summary.rounds(), 100_000);
}
