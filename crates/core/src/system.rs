//! High-level single-AP system facade.
//!
//! [`SingleApSystem`] wraps topology generation, channel realisation, virtual
//! packet tagging, client selection and precoding behind one call so that
//! applications (and the quick-start example) can compare a MIDAS deployment
//! with a conventional co-located 802.11ac AP in a few lines.

use crate::config::SystemConfig;
use midas_channel::{ChannelMatrix, ChannelModel, SimRng};
use midas_net::deployment::PairedTopology;
use midas_phy::precoder::{make_precoder, Precoding};

/// Result of one downlink MU-MIMO comparison on a shared topology.
#[derive(Debug, Clone)]
pub struct DownlinkOutcome {
    /// Sum capacity (bit/s/Hz) of the MIDAS (DAS + power-balanced) system.
    pub midas_capacity: f64,
    /// Sum capacity (bit/s/Hz) of the CAS baseline.
    pub cas_capacity: f64,
    /// Full precoding result for MIDAS.
    pub midas: Precoding,
    /// Full precoding result for the CAS baseline.
    pub cas: Precoding,
}

impl DownlinkOutcome {
    /// Relative capacity gain of MIDAS over CAS (0.5 = +50 %).
    pub fn gain(&self) -> f64 {
        midas_net::metrics::relative_gain(self.midas_capacity, self.cas_capacity)
    }
}

/// A single AP, its clients, and the channels of both deployment variants.
#[derive(Debug, Clone)]
pub struct SingleApSystem {
    config: SystemConfig,
    pair: PairedTopology,
    cas_channel: ChannelMatrix,
    das_channel: ChannelMatrix,
}

impl SingleApSystem {
    /// Generates a random topology and channel realisation for the given
    /// configuration and seed.
    pub fn generate(config: &SystemConfig, seed: u64) -> Self {
        let mut rng = SimRng::new(seed);
        // Clients sit in the offices/corridor around the AP (§5.1); keep them
        // within the area the 5-10 m DAS ring is meant to serve rather than
        // letting them drift to the coverage edge.
        let topo_config = midas_channel::topology::TopologyConfig {
            max_client_ap_m: 15.0,
            ..midas_channel::topology::TopologyConfig::das(config.antennas, config.clients)
        };
        let pair = PairedTopology::single_ap(&topo_config, config.region_size_m, &mut rng);
        let env = config.environment();
        let mut model = ChannelModel::new(env, seed);
        let clients = pair.das.clients_of(0);
        let das_channel = model.realize(&pair.das.aps[0], &clients);
        let cas_channel = model.realize(&pair.cas.aps[0], &clients);
        SingleApSystem {
            config: *config,
            pair,
            cas_channel,
            das_channel,
        }
    }

    /// The configuration this system was generated from.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// The paired (CAS + DAS) topology.
    pub fn topology(&self) -> &PairedTopology {
        &self.pair
    }

    /// The DAS channel realisation (clients × antennas).
    pub fn das_channel(&self) -> &ChannelMatrix {
        &self.das_channel
    }

    /// The CAS channel realisation (clients × antennas).
    pub fn cas_channel(&self) -> &ChannelMatrix {
        &self.cas_channel
    }

    /// Precodes a full MU-MIMO downlink transmission to every client with
    /// both systems and reports the resulting capacities.
    pub fn downlink_comparison(&self) -> DownlinkOutcome {
        let midas = make_precoder(self.config.midas_precoder).precode_channel(&self.das_channel);
        let cas = make_precoder(self.config.cas_precoder).precode_channel(&self.cas_channel);
        DownlinkOutcome {
            midas_capacity: midas.sum_capacity,
            cas_capacity: cas.sum_capacity,
            midas,
            cas,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use midas_net::metrics::Cdf;
    use midas_phy::power;

    #[test]
    fn generate_produces_consistent_shapes() {
        let config = SystemConfig::default();
        let sys = SingleApSystem::generate(&config, 1);
        assert_eq!(sys.das_channel().num_antennas(), 4);
        assert_eq!(sys.das_channel().num_clients(), 4);
        assert_eq!(sys.cas_channel().num_antennas(), 4);
        assert_eq!(sys.topology().das.clients.len(), 4);
    }

    #[test]
    fn downlink_comparison_meets_power_constraints() {
        let sys = SingleApSystem::generate(&SystemConfig::default(), 2);
        let out = sys.downlink_comparison();
        assert!(out.midas_capacity > 0.0 && out.cas_capacity > 0.0);
        assert!(power::satisfies_per_antenna(
            &out.midas.v,
            sys.das_channel().tx_power_mw * (1.0 + 1e-9)
        ));
        assert!(power::satisfies_per_antenna(
            &out.cas.v,
            sys.cas_channel().tx_power_mw * (1.0 + 1e-9)
        ));
    }

    #[test]
    fn midas_beats_cas_in_the_median_over_topologies() {
        let config = SystemConfig::default();
        let gains: Vec<f64> = (0..20)
            .map(|seed| {
                SingleApSystem::generate(&config, 100 + seed)
                    .downlink_comparison()
                    .gain()
            })
            .collect();
        let median_gain = Cdf::new(&gains).median();
        assert!(
            median_gain > 0.2,
            "median MIDAS gain over CAS should be clearly positive, got {median_gain:.2}"
        );
    }

    #[test]
    fn same_seed_is_reproducible() {
        let config = SystemConfig::default();
        let a = SingleApSystem::generate(&config, 7).downlink_comparison();
        let b = SingleApSystem::generate(&config, 7).downlink_comparison();
        assert!((a.midas_capacity - b.midas_capacity).abs() < 1e-12);
        assert!((a.cas_capacity - b.cas_capacity).abs() < 1e-12);
    }
}
