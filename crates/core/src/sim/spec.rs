//! Declarative experiment specifications: every table/figure of the paper's
//! evaluation as a value.
//!
//! An [`ExperimentSpec`] names one experiment *and its scale* (topology
//! count, rounds, contention model, …); [`ExperimentSpec::run`] executes it
//! through the session machinery and returns a typed [`ExperimentOutput`].
//! The benchmark harness and the examples construct specs instead of
//! calling per-figure free functions, so adding an experiment means adding
//! a variant — not another function zoo.
//!
//! The numbered constructors ([`ExperimentSpec::fig03`] …) pin the bench
//! scale of each paper figure (the sample counts the figure targets print
//! at `midas_bench::BENCH_SEED`).

use crate::experiment::{
    ablation_antenna_wait, ablation_das_radius, ablation_tag_width, end_to_end_series,
    enterprise_scaling, fig03_naive_scaling_drop, fig07_link_snr, fig08_09_capacity,
    fig10_smart_precoding, fig11_optimal_comparison, fig12_simultaneous_tx, fig13_deadzones,
    fig14_packet_tagging, fig16_calibration, sec534_hidden_terminals, CalibrationCell,
    CalibrationGrid, EnterpriseScalingSeries, SmartPrecodingSeries,
};
use crate::sim::session::{PairedSamples, SessionBuilder, SessionSeries};
use crate::sim::source::PairedRecipe;
use midas_channel::EnvironmentKind;
use midas_net::capture::ContentionModel;
use midas_net::coverage::DeadzoneComparison;
use midas_net::dynamics::DynamicsSpec;
use midas_net::hidden_terminal::HiddenTerminalComparison;
use midas_net::scale::Scenario;
use midas_net::traffic::TrafficKind;

/// One experiment of the paper's evaluation (plus the beyond-paper
/// enterprise sweep), as a value.  See the module docs.
#[derive(Debug, Clone, PartialEq)]
pub enum ExperimentSpec {
    /// Fig. 3 — capacity drop caused by naïve per-antenna power scaling.
    NaiveScalingDrop {
        /// Random topologies sampled.
        topologies: usize,
    },
    /// Fig. 7 — SISO link SNR across clients, CAS vs DAS.
    LinkSnr {
        /// Random topologies sampled.
        topologies: usize,
    },
    /// Figs. 8 / 9 — MU-MIMO sum-capacity, CAS vs MIDAS precoding.
    MuMimoCapacity {
        /// Propagation environment (Office A for Fig. 8, B for Fig. 9).
        environment: EnvironmentKind,
        /// Antenna (= client) count per AP.
        antennas: usize,
        /// Random topologies sampled.
        topologies: usize,
    },
    /// Fig. 10 — power-balanced precoding on CAS and DAS separately.
    SmartPrecoding {
        /// Random topologies sampled.
        topologies: usize,
    },
    /// Fig. 11 — MIDAS precoder vs the numerically optimal precoder.
    OptimalComparison {
        /// Random topologies sampled.
        topologies: usize,
        /// Apply the optimal precoder to ~2 s-stale CSI (the testbed
        /// panel).
        stale_csi: bool,
    },
    /// Fig. 12 — ratio of simultaneous transmissions, MIDAS / CAS.
    SimultaneousTx {
        /// Random 3-AP topologies sampled.
        topologies: usize,
    },
    /// Fig. 13 / §5.3.3 — dead-zone comparison.
    Deadzones {
        /// Random deployments sampled.
        deployments: usize,
    },
    /// §5.3.4 — hidden-terminal spots removed by the DAS deployment.
    HiddenTerminals {
        /// Random deployments sampled.
        deployments: usize,
    },
    /// Fig. 14 — virtual packet tagging vs random client selection.
    PacketTagging {
        /// Random topologies sampled.
        topologies: usize,
    },
    /// Figs. 15 / 16 — end-to-end network capacity, CAS vs MIDAS.
    EndToEnd {
        /// 8-AP large-scale layout (Fig. 16) instead of the 3-AP testbed
        /// (Fig. 15).
        eight_aps: bool,
        /// Random topologies sampled.
        topologies: usize,
        /// TXOP rounds per topology.
        rounds: usize,
        /// Contention semantics both MACs run under.
        contention: ContentionModel,
    },
    /// Fig. 16 calibration — {CS × margin × σ} grid sweep of the physical
    /// model.
    Fig16Calibration {
        /// The parameter grid to score.
        grid: CalibrationGrid,
        /// Random topologies per cell.
        topologies: usize,
        /// TXOP rounds per topology.
        rounds: usize,
    },
    /// Beyond Fig. 16 — enterprise scenario sweep at scale.
    EnterpriseScaling {
        /// The floor scenario (`midas_net::scale`).
        scenario: Scenario,
        /// Random floor realisations.
        topologies: usize,
        /// TXOP rounds per realisation.
        rounds: usize,
    },
    /// Beyond the paper — MIDAS-vs-CAS capacity gain as a function of
    /// offered load, with optional long-horizon client mobility.  Each duty
    /// cycle becomes one on/off workload point on the 3-AP testbed; the
    /// row reports the paired median network capacities and their ratio.
    LoadVsGain {
        /// On/off duty cycles swept (offered-load points, each in `[0, 1]`).
        duty_cycles: Vec<f64>,
        /// Random topologies per point.
        topologies: usize,
        /// TXOP rounds per topology.
        rounds: usize,
        /// Walker speed (m/s) for the roaming-walk dynamics layer; `0`
        /// keeps the sweep static (byte-identical to the legacy pipeline).
        speed_mps: f64,
    },
    /// Ablation — tag-width sweep (§3.2.4).
    TagWidth {
        /// Tag widths to sweep.
        widths: Vec<usize>,
        /// Random topologies per width.
        topologies: usize,
    },
    /// Ablation — DAS placement radius sweep (§7).
    DasRadius {
        /// `(lo, hi)` annulus bounds as fractions of the coverage range.
        fractions: Vec<(f64, f64)>,
        /// Random topologies per band.
        topologies: usize,
    },
    /// Ablation — opportunistic antenna-wait window sweep (§3.2.3).
    AntennaWait {
        /// Wait windows (µs) to sweep.
        windows_us: Vec<u64>,
        /// Random busy patterns per window.
        trials: usize,
    },
}

impl ExperimentSpec {
    /// Fig. 3 at bench scale.
    pub fn fig03() -> Self {
        ExperimentSpec::NaiveScalingDrop { topologies: 60 }
    }

    /// Fig. 7 at bench scale.
    pub fn fig07() -> Self {
        ExperimentSpec::LinkSnr { topologies: 60 }
    }

    /// Fig. 8 (Office A) / Fig. 9 (Office B) at bench scale, one antenna
    /// count per spec.
    pub fn fig08_09(environment: EnvironmentKind, antennas: usize) -> Self {
        ExperimentSpec::MuMimoCapacity {
            environment,
            antennas,
            topologies: 60,
        }
    }

    /// Fig. 10 at bench scale.
    pub fn fig10() -> Self {
        ExperimentSpec::SmartPrecoding { topologies: 60 }
    }

    /// Fig. 11 at bench scale (one panel per `stale_csi` value).
    pub fn fig11(stale_csi: bool) -> Self {
        ExperimentSpec::OptimalComparison {
            topologies: 20,
            stale_csi,
        }
    }

    /// Fig. 12 at bench scale.
    pub fn fig12() -> Self {
        ExperimentSpec::SimultaneousTx { topologies: 30 }
    }

    /// Fig. 13 at bench scale.
    pub fn fig13() -> Self {
        ExperimentSpec::Deadzones { deployments: 10 }
    }

    /// §5.3.4 at bench scale.
    pub fn sec534() -> Self {
        ExperimentSpec::HiddenTerminals { deployments: 10 }
    }

    /// Fig. 14 at bench scale.
    pub fn fig14() -> Self {
        ExperimentSpec::PacketTagging { topologies: 60 }
    }

    /// Fig. 15 (3-AP end-to-end, binary graph) at bench scale.
    pub fn fig15() -> Self {
        ExperimentSpec::EndToEnd {
            eight_aps: false,
            topologies: 30,
            rounds: 15,
            contention: ContentionModel::Graph,
        }
    }

    /// Fig. 16 (8-AP end-to-end) at bench scale, under the given contention
    /// model.
    pub fn fig16(contention: ContentionModel) -> Self {
        ExperimentSpec::EndToEnd {
            eight_aps: true,
            topologies: 15,
            rounds: 10,
            contention,
        }
    }

    /// The stable name of this experiment (the figure slug the bench
    /// targets and sinks use).
    pub fn name(&self) -> &'static str {
        match self {
            ExperimentSpec::NaiveScalingDrop { .. } => "fig03_naive_scaling_drop",
            ExperimentSpec::LinkSnr { .. } => "fig07_link_snr",
            ExperimentSpec::MuMimoCapacity { .. } => "fig08_09_capacity",
            ExperimentSpec::SmartPrecoding { .. } => "fig10_smart_precoding",
            ExperimentSpec::OptimalComparison { .. } => "fig11_optimal_comparison",
            ExperimentSpec::SimultaneousTx { .. } => "fig12_simultaneous_tx",
            ExperimentSpec::Deadzones { .. } => "fig13_deadzone",
            ExperimentSpec::HiddenTerminals { .. } => "sec534_hidden_terminals",
            ExperimentSpec::PacketTagging { .. } => "fig14_packet_tagging",
            ExperimentSpec::EndToEnd {
                eight_aps: false, ..
            } => "fig15_three_ap_end_to_end",
            ExperimentSpec::EndToEnd {
                eight_aps: true, ..
            } => "fig16_eight_ap_simulation",
            ExperimentSpec::Fig16Calibration { .. } => "fig16_calibration",
            ExperimentSpec::EnterpriseScaling { .. } => "enterprise_scaling",
            ExperimentSpec::LoadVsGain { .. } => "load_vs_gain",
            ExperimentSpec::TagWidth { .. } => "ablation_tag_width",
            ExperimentSpec::DasRadius { .. } => "ablation_das_radius",
            ExperimentSpec::AntennaWait { .. } => "ablation_antenna_wait",
        }
    }

    /// Runs the experiment at `seed`.  Deterministic in the seed and
    /// bit-identical at any `MIDAS_THREADS` setting; at the seeds the unit
    /// tests pin, every output reproduces the pre-redesign free functions
    /// byte for byte (see `crates/core/tests/runner_determinism.rs`).
    pub fn run(&self, seed: u64) -> ExperimentOutput {
        match self {
            ExperimentSpec::NaiveScalingDrop { topologies } => {
                ExperimentOutput::Paired(fig03_naive_scaling_drop(*topologies, seed))
            }
            ExperimentSpec::LinkSnr { topologies } => {
                ExperimentOutput::Paired(fig07_link_snr(*topologies, seed))
            }
            ExperimentSpec::MuMimoCapacity {
                environment,
                antennas,
                topologies,
            } => ExperimentOutput::Paired(fig08_09_capacity(
                *environment,
                *antennas,
                *topologies,
                seed,
            )),
            ExperimentSpec::SmartPrecoding { topologies } => {
                ExperimentOutput::SmartPrecoding(fig10_smart_precoding(*topologies, seed))
            }
            ExperimentSpec::OptimalComparison {
                topologies,
                stale_csi,
            } => ExperimentOutput::Paired(fig11_optimal_comparison(*topologies, *stale_csi, seed)),
            ExperimentSpec::SimultaneousTx { topologies } => {
                ExperimentOutput::Ratios(fig12_simultaneous_tx(*topologies, seed))
            }
            ExperimentSpec::Deadzones { deployments } => {
                ExperimentOutput::Deadzones(fig13_deadzones(*deployments, seed))
            }
            ExperimentSpec::HiddenTerminals { deployments } => {
                ExperimentOutput::HiddenTerminals(sec534_hidden_terminals(*deployments, seed))
            }
            ExperimentSpec::PacketTagging { topologies } => {
                ExperimentOutput::Paired(fig14_packet_tagging(*topologies, seed))
            }
            ExperimentSpec::EndToEnd {
                eight_aps,
                topologies,
                rounds,
                contention,
            } => ExperimentOutput::EndToEnd(end_to_end_series(
                *eight_aps,
                *topologies,
                *rounds,
                seed,
                *contention,
            )),
            ExperimentSpec::Fig16Calibration {
                grid,
                topologies,
                rounds,
            } => ExperimentOutput::Calibration(fig16_calibration(grid, *topologies, *rounds, seed)),
            ExperimentSpec::EnterpriseScaling {
                scenario,
                topologies,
                rounds,
            } => ExperimentOutput::Enterprise(enterprise_scaling(
                scenario,
                *topologies,
                *rounds,
                seed,
            )),
            ExperimentSpec::LoadVsGain {
                duty_cycles,
                topologies,
                rounds,
                speed_mps,
            } => ExperimentOutput::LoadVsGain(load_vs_gain(
                duty_cycles,
                *topologies,
                *rounds,
                *speed_mps,
                seed,
            )),
            ExperimentSpec::TagWidth { widths, topologies } => {
                ExperimentOutput::TagWidth(ablation_tag_width(widths, *topologies, seed))
            }
            ExperimentSpec::DasRadius {
                fractions,
                topologies,
            } => ExperimentOutput::DasRadius(ablation_das_radius(fractions, *topologies, seed)),
            ExperimentSpec::AntennaWait { windows_us, trials } => {
                ExperimentOutput::AntennaWait(ablation_antenna_wait(windows_us, *trials, seed))
            }
        }
    }
}

/// One offered-load point of an [`ExperimentSpec::LoadVsGain`] sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadGainRow {
    /// The on/off duty cycle this row was measured at.
    pub duty: f64,
    /// Median CAS network capacity across topologies (bit/s/Hz).
    pub cas_median: f64,
    /// Median MIDAS network capacity across topologies (bit/s/Hz).
    pub das_median: f64,
    /// `das_median / cas_median` — the headline gain at this load.
    pub gain: f64,
}

fn median(samples: &[f64]) -> f64 {
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    match sorted.len() {
        0 => f64::NAN,
        n if n % 2 == 1 => sorted[n / 2],
        n => (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0,
    }
}

/// Sweeps MIDAS-vs-CAS gain against offered load on the 3-AP testbed,
/// optionally under the roaming-walk dynamics layer (`speed_mps > 0`).
fn load_vs_gain(
    duty_cycles: &[f64],
    topologies: usize,
    rounds: usize,
    speed_mps: f64,
    seed: u64,
) -> Vec<LoadGainRow> {
    duty_cycles
        .iter()
        .map(|&duty| {
            let mut builder = SessionBuilder::new(PairedRecipe::three_ap_paper())
                .rounds(rounds)
                .traffic(TrafficKind::OnOff {
                    duty,
                    mean_burst_rounds: 4.0,
                });
            if speed_mps > 0.0 {
                builder = builder.dynamics(DynamicsSpec::roaming_walk(speed_mps));
            }
            let series = builder.build().run(topologies, seed);
            let cas_median = median(&series.network.cas);
            let das_median = median(&series.network.das);
            LoadGainRow {
                duty,
                cas_median,
                das_median,
                gain: das_median / cas_median,
            }
        })
        .collect()
}

/// The typed result of an [`ExperimentSpec::run`].
///
/// Each variant carries the same series type the corresponding legacy
/// runner returned; the `expect_*` accessors unwrap with a clear panic
/// message for callers (benches) that know which experiment they ran.
#[derive(Debug, Clone)]
pub enum ExperimentOutput {
    /// Paired CAS/DAS samples (Figs. 3, 7, 8, 9, 11, 14).
    Paired(PairedSamples),
    /// The four Fig. 10 capacity series.
    SmartPrecoding(SmartPrecodingSeries),
    /// A single per-topology series (Fig. 12 ratios).
    Ratios(Vec<f64>),
    /// Per-deployment dead-zone comparisons (Fig. 13).
    Deadzones(Vec<DeadzoneComparison>),
    /// Per-deployment hidden-terminal comparisons (§5.3.4).
    HiddenTerminals(Vec<HiddenTerminalComparison>),
    /// Network + per-client paired series (Figs. 15 / 16).
    EndToEnd(SessionSeries),
    /// Scored calibration cells (Fig. 16 calibration).
    Calibration(Vec<CalibrationCell>),
    /// The enterprise-scaling diagnostic series.
    Enterprise(EnterpriseScalingSeries),
    /// One row per duty cycle of the load-vs-gain sweep.
    LoadVsGain(Vec<LoadGainRow>),
    /// `(tag_width, mean capacity)` rows.
    TagWidth(Vec<(usize, f64)>),
    /// `((lo, hi) fraction band, median capacity)` rows.
    DasRadius(Vec<((f64, f64), f64)>),
    /// `(wait window µs, fraction of trials gaining an antenna)` rows.
    AntennaWait(Vec<(u64, f64)>),
}

impl ExperimentOutput {
    /// Unwraps a [`ExperimentOutput::Paired`] result.
    pub fn expect_paired(self) -> PairedSamples {
        match self {
            ExperimentOutput::Paired(s) => s,
            other => panic!("expected paired samples, got {}", other.variant_name()),
        }
    }

    /// Unwraps a [`ExperimentOutput::SmartPrecoding`] result.
    pub fn expect_smart_precoding(self) -> SmartPrecodingSeries {
        match self {
            ExperimentOutput::SmartPrecoding(s) => s,
            other => panic!(
                "expected smart-precoding series, got {}",
                other.variant_name()
            ),
        }
    }

    /// Unwraps a [`ExperimentOutput::Ratios`] result.
    pub fn expect_ratios(self) -> Vec<f64> {
        match self {
            ExperimentOutput::Ratios(s) => s,
            other => panic!("expected ratio series, got {}", other.variant_name()),
        }
    }

    /// Unwraps a [`ExperimentOutput::Deadzones`] result.
    pub fn expect_deadzones(self) -> Vec<DeadzoneComparison> {
        match self {
            ExperimentOutput::Deadzones(s) => s,
            other => panic!("expected dead-zone series, got {}", other.variant_name()),
        }
    }

    /// Unwraps a [`ExperimentOutput::HiddenTerminals`] result.
    pub fn expect_hidden_terminals(self) -> Vec<HiddenTerminalComparison> {
        match self {
            ExperimentOutput::HiddenTerminals(s) => s,
            other => panic!(
                "expected hidden-terminal series, got {}",
                other.variant_name()
            ),
        }
    }

    /// Unwraps a [`ExperimentOutput::EndToEnd`] result.
    pub fn expect_end_to_end(self) -> SessionSeries {
        match self {
            ExperimentOutput::EndToEnd(s) => s,
            other => panic!("expected end-to-end series, got {}", other.variant_name()),
        }
    }

    /// Unwraps a [`ExperimentOutput::Calibration`] result.
    pub fn expect_calibration(self) -> Vec<CalibrationCell> {
        match self {
            ExperimentOutput::Calibration(s) => s,
            other => panic!("expected calibration cells, got {}", other.variant_name()),
        }
    }

    /// Unwraps a [`ExperimentOutput::Enterprise`] result.
    pub fn expect_enterprise(self) -> EnterpriseScalingSeries {
        match self {
            ExperimentOutput::Enterprise(s) => s,
            other => panic!("expected enterprise series, got {}", other.variant_name()),
        }
    }

    /// Unwraps a [`ExperimentOutput::LoadVsGain`] result.
    pub fn expect_load_vs_gain(self) -> Vec<LoadGainRow> {
        match self {
            ExperimentOutput::LoadVsGain(s) => s,
            other => panic!("expected load-vs-gain rows, got {}", other.variant_name()),
        }
    }

    /// Unwraps a [`ExperimentOutput::TagWidth`] result.
    pub fn expect_tag_width(self) -> Vec<(usize, f64)> {
        match self {
            ExperimentOutput::TagWidth(s) => s,
            other => panic!("expected tag-width rows, got {}", other.variant_name()),
        }
    }

    /// Unwraps a [`ExperimentOutput::DasRadius`] result.
    pub fn expect_das_radius(self) -> Vec<((f64, f64), f64)> {
        match self {
            ExperimentOutput::DasRadius(s) => s,
            other => panic!("expected DAS-radius rows, got {}", other.variant_name()),
        }
    }

    /// Unwraps a [`ExperimentOutput::AntennaWait`] result.
    pub fn expect_antenna_wait(self) -> Vec<(u64, f64)> {
        match self {
            ExperimentOutput::AntennaWait(s) => s,
            other => panic!("expected antenna-wait rows, got {}", other.variant_name()),
        }
    }

    fn variant_name(&self) -> &'static str {
        match self {
            ExperimentOutput::Paired(_) => "Paired",
            ExperimentOutput::SmartPrecoding(_) => "SmartPrecoding",
            ExperimentOutput::Ratios(_) => "Ratios",
            ExperimentOutput::Deadzones(_) => "Deadzones",
            ExperimentOutput::HiddenTerminals(_) => "HiddenTerminals",
            ExperimentOutput::EndToEnd(_) => "EndToEnd",
            ExperimentOutput::Calibration(_) => "Calibration",
            ExperimentOutput::Enterprise(_) => "Enterprise",
            ExperimentOutput::LoadVsGain(_) => "LoadVsGain",
            ExperimentOutput::TagWidth(_) => "TagWidth",
            ExperimentOutput::DasRadius(_) => "DasRadius",
            ExperimentOutput::AntennaWait(_) => "AntennaWait",
        }
    }
}

// ---------------------------------------------------------------------------
// Canonical textual form
// ---------------------------------------------------------------------------
//
// `Display` emits `name{key=value,…}` with the variant's fields in
// declaration order and floats in shortest-round-trip (`{:?}`) form, and
// `FromStr` parses exactly that form back.  The encoding is *canonical*:
// one spec has one string, so hashes of the string (the capacity-planning
// service's cache keys) are reproducible across runs and platforms.  The
// golden strings are pinned in `crates/core/tests/spec_roundtrip.rs`.

/// Error from parsing the canonical textual form of an [`ExperimentSpec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecParseError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// What the parser expected or found wrong.
    pub message: String,
}

impl std::fmt::Display for SpecParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "spec parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for SpecParseError {}

fn environment_kind_name(kind: EnvironmentKind) -> &'static str {
    match kind {
        EnvironmentKind::OfficeA => "office_a",
        EnvironmentKind::OfficeB => "office_b",
        EnvironmentKind::OpenPlan => "open_plan",
    }
}

fn fmt_f64_list(values: &[f64]) -> String {
    let items: Vec<String> = values.iter().map(|v| format!("{v:?}")).collect();
    format!("[{}]", items.join(","))
}

fn fmt_contention(model: &ContentionModel) -> String {
    match model {
        ContentionModel::Graph => "graph".to_string(),
        ContentionModel::Physical(p) => {
            let sigma = match p.sensing_sigma_db {
                Some(s) => format!("{s:?}"),
                None => "none".to_string(),
            };
            format!(
                "physical(cs_threshold_dbm={:?},capture_margin_db={:?},sensing_sigma_db={sigma})",
                p.cs_threshold_dbm, p.capture_margin_db
            )
        }
    }
}

impl std::fmt::Display for ExperimentSpec {
    /// The canonical textual form: `name{key=value,…}` (see the section
    /// comment above).  An [`ExperimentSpec::EnterpriseScaling`] over a
    /// scenario that is not one of the named library recipes renders its
    /// scenario as `custom`, which [`FromStr`](std::str::FromStr) rejects —
    /// custom floors have no stable textual identity.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = self.name();
        match self {
            ExperimentSpec::NaiveScalingDrop { topologies }
            | ExperimentSpec::LinkSnr { topologies }
            | ExperimentSpec::SmartPrecoding { topologies }
            | ExperimentSpec::SimultaneousTx { topologies }
            | ExperimentSpec::PacketTagging { topologies } => {
                write!(f, "{name}{{topologies={topologies}}}")
            }
            ExperimentSpec::MuMimoCapacity {
                environment,
                antennas,
                topologies,
            } => write!(
                f,
                "{name}{{environment={},antennas={antennas},topologies={topologies}}}",
                environment_kind_name(*environment)
            ),
            ExperimentSpec::OptimalComparison {
                topologies,
                stale_csi,
            } => write!(f, "{name}{{topologies={topologies},stale_csi={stale_csi}}}"),
            ExperimentSpec::Deadzones { deployments }
            | ExperimentSpec::HiddenTerminals { deployments } => {
                write!(f, "{name}{{deployments={deployments}}}")
            }
            ExperimentSpec::EndToEnd {
                eight_aps: _,
                topologies,
                rounds,
                contention,
            } => write!(
                f,
                "{name}{{topologies={topologies},rounds={rounds},contention={}}}",
                fmt_contention(contention)
            ),
            ExperimentSpec::Fig16Calibration {
                grid,
                topologies,
                rounds,
            } => write!(
                f,
                "{name}{{cs_thresholds_dbm={},capture_margins_db={},sensing_sigmas_db={},\
                 topologies={topologies},rounds={rounds}}}",
                fmt_f64_list(&grid.cs_thresholds_dbm),
                fmt_f64_list(&grid.capture_margins_db),
                fmt_f64_list(&grid.sensing_sigmas_db)
            ),
            ExperimentSpec::EnterpriseScaling {
                scenario,
                topologies,
                rounds,
            } => {
                let aps = scenario.num_aps();
                let label = if Scenario::by_name(scenario.name(), aps).as_ref() == Some(scenario) {
                    scenario.name()
                } else {
                    "custom"
                };
                write!(
                    f,
                    "{name}{{scenario={label},aps={aps},topologies={topologies},rounds={rounds}}}"
                )
            }
            ExperimentSpec::LoadVsGain {
                duty_cycles,
                topologies,
                rounds,
                speed_mps,
            } => write!(
                f,
                "{name}{{duty_cycles={},topologies={topologies},rounds={rounds},\
                 speed_mps={speed_mps:?}}}",
                fmt_f64_list(duty_cycles)
            ),
            ExperimentSpec::TagWidth { widths, topologies } => {
                let items: Vec<String> = widths.iter().map(|w| w.to_string()).collect();
                write!(
                    f,
                    "{name}{{widths=[{}],topologies={topologies}}}",
                    items.join(",")
                )
            }
            ExperimentSpec::DasRadius {
                fractions,
                topologies,
            } => {
                let items: Vec<String> = fractions
                    .iter()
                    .map(|(lo, hi)| format!("({lo:?},{hi:?})"))
                    .collect();
                write!(
                    f,
                    "{name}{{fractions=[{}],topologies={topologies}}}",
                    items.join(",")
                )
            }
            ExperimentSpec::AntennaWait { windows_us, trials } => {
                let items: Vec<String> = windows_us.iter().map(|w| w.to_string()).collect();
                write!(
                    f,
                    "{name}{{windows_us=[{}],trials={trials}}}",
                    items.join(",")
                )
            }
        }
    }
}

/// Strict cursor over the canonical form — every helper fails with the byte
/// offset it stopped at, so errors point into the input.
struct SpecCursor<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> SpecCursor<'a> {
    fn new(input: &'a str) -> Self {
        SpecCursor { input, pos: 0 }
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, SpecParseError> {
        Err(SpecParseError {
            offset: self.pos,
            message: message.into(),
        })
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn lit(&mut self, token: &str) -> Result<(), SpecParseError> {
        if self.rest().starts_with(token) {
            self.pos += token.len();
            Ok(())
        } else {
            self.err(format!(
                "expected `{token}`, found `{}`",
                self.rest().chars().take(24).collect::<String>()
            ))
        }
    }

    /// The longest identifier (`[a-z0-9_]+`) at the cursor.
    fn ident(&mut self) -> Result<&'a str, SpecParseError> {
        let rest = self.rest();
        let len = rest
            .bytes()
            .take_while(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || *b == b'_')
            .count();
        if len == 0 {
            return self.err("expected an identifier");
        }
        self.pos += len;
        Ok(&rest[..len])
    }

    /// The longest number token (`[0-9+-.eE]+`) at the cursor, parsed as `T`.
    fn number<T: std::str::FromStr>(&mut self, what: &str) -> Result<T, SpecParseError> {
        let rest = self.rest();
        let len = rest
            .bytes()
            .take_while(|b| {
                b.is_ascii_digit()
                    || matches!(b, b'+' | b'-' | b'.' | b'e' | b'E' | b'i' | b'n' | b'f')
            })
            .count();
        let token = &rest[..len];
        match token.parse() {
            Ok(v) if len > 0 => {
                self.pos += len;
                Ok(v)
            }
            _ => self.err(format!("expected {what}, found `{token}`")),
        }
    }

    fn bool_value(&mut self) -> Result<bool, SpecParseError> {
        if self.rest().starts_with("true") {
            self.pos += 4;
            Ok(true)
        } else if self.rest().starts_with("false") {
            self.pos += 5;
            Ok(false)
        } else {
            self.err("expected `true` or `false`")
        }
    }

    /// `key=<parsed value>` with the exact key (canonical field order is
    /// strict).
    fn field<T>(
        &mut self,
        key: &str,
        parse: impl FnOnce(&mut Self) -> Result<T, SpecParseError>,
    ) -> Result<T, SpecParseError> {
        self.lit(key)?;
        self.lit("=")?;
        parse(self)
    }

    fn list<T>(
        &mut self,
        parse: impl Fn(&mut Self) -> Result<T, SpecParseError>,
    ) -> Result<Vec<T>, SpecParseError> {
        self.lit("[")?;
        let mut out = Vec::new();
        if self.rest().starts_with(']') {
            self.pos += 1;
            return Ok(out);
        }
        loop {
            out.push(parse(self)?);
            if self.rest().starts_with(',') {
                self.pos += 1;
            } else {
                self.lit("]")?;
                return Ok(out);
            }
        }
    }

    fn contention(&mut self) -> Result<ContentionModel, SpecParseError> {
        if self.rest().starts_with("graph") {
            self.pos += 5;
            return Ok(ContentionModel::Graph);
        }
        self.lit("physical(")?;
        let cs = self.field("cs_threshold_dbm", |c| c.number("a float"))?;
        self.lit(",")?;
        let margin = self.field("capture_margin_db", |c| c.number("a float"))?;
        self.lit(",")?;
        let sigma = self.field("sensing_sigma_db", |c| {
            if c.rest().starts_with("none") {
                c.pos += 4;
                Ok(None)
            } else {
                c.number("a float or `none`").map(Some)
            }
        })?;
        self.lit(")")?;
        Ok(ContentionModel::Physical(
            midas_net::capture::PhysicalConfig {
                cs_threshold_dbm: cs,
                capture_margin_db: margin,
                sensing_sigma_db: sigma,
            },
        ))
    }

    fn environment_kind(&mut self) -> Result<EnvironmentKind, SpecParseError> {
        let start = self.pos;
        let name = self.ident()?;
        match name {
            "office_a" => Ok(EnvironmentKind::OfficeA),
            "office_b" => Ok(EnvironmentKind::OfficeB),
            "open_plan" => Ok(EnvironmentKind::OpenPlan),
            other => {
                self.pos = start;
                self.err(format!(
                    "unknown environment `{other}` (expected office_a, office_b or open_plan)"
                ))
            }
        }
    }
}

impl std::str::FromStr for ExperimentSpec {
    type Err = SpecParseError;

    /// Parses the canonical form [`Display`](std::fmt::Display) emits —
    /// strict field order, no whitespace.
    fn from_str(input: &str) -> Result<Self, Self::Err> {
        let mut c = SpecCursor::new(input);
        let name = c.ident()?.to_string();
        c.lit("{")?;
        let spec = match name.as_str() {
            "fig03_naive_scaling_drop" => ExperimentSpec::NaiveScalingDrop {
                topologies: c.field("topologies", |c| c.number("an integer"))?,
            },
            "fig07_link_snr" => ExperimentSpec::LinkSnr {
                topologies: c.field("topologies", |c| c.number("an integer"))?,
            },
            "fig08_09_capacity" => {
                let environment = c.field("environment", SpecCursor::environment_kind)?;
                c.lit(",")?;
                let antennas = c.field("antennas", |c| c.number("an integer"))?;
                c.lit(",")?;
                let topologies = c.field("topologies", |c| c.number("an integer"))?;
                ExperimentSpec::MuMimoCapacity {
                    environment,
                    antennas,
                    topologies,
                }
            }
            "fig10_smart_precoding" => ExperimentSpec::SmartPrecoding {
                topologies: c.field("topologies", |c| c.number("an integer"))?,
            },
            "fig11_optimal_comparison" => {
                let topologies = c.field("topologies", |c| c.number("an integer"))?;
                c.lit(",")?;
                let stale_csi = c.field("stale_csi", SpecCursor::bool_value)?;
                ExperimentSpec::OptimalComparison {
                    topologies,
                    stale_csi,
                }
            }
            "fig12_simultaneous_tx" => ExperimentSpec::SimultaneousTx {
                topologies: c.field("topologies", |c| c.number("an integer"))?,
            },
            "fig13_deadzone" => ExperimentSpec::Deadzones {
                deployments: c.field("deployments", |c| c.number("an integer"))?,
            },
            "sec534_hidden_terminals" => ExperimentSpec::HiddenTerminals {
                deployments: c.field("deployments", |c| c.number("an integer"))?,
            },
            "fig14_packet_tagging" => ExperimentSpec::PacketTagging {
                topologies: c.field("topologies", |c| c.number("an integer"))?,
            },
            "fig15_three_ap_end_to_end" | "fig16_eight_ap_simulation" => {
                let topologies = c.field("topologies", |c| c.number("an integer"))?;
                c.lit(",")?;
                let rounds = c.field("rounds", |c| c.number("an integer"))?;
                c.lit(",")?;
                let contention = c.field("contention", SpecCursor::contention)?;
                ExperimentSpec::EndToEnd {
                    eight_aps: name == "fig16_eight_ap_simulation",
                    topologies,
                    rounds,
                    contention,
                }
            }
            "fig16_calibration" => {
                let cs = c.field("cs_thresholds_dbm", |c| c.list(|c| c.number("a float")))?;
                c.lit(",")?;
                let margins = c.field("capture_margins_db", |c| c.list(|c| c.number("a float")))?;
                c.lit(",")?;
                let sigmas = c.field("sensing_sigmas_db", |c| c.list(|c| c.number("a float")))?;
                c.lit(",")?;
                let topologies = c.field("topologies", |c| c.number("an integer"))?;
                c.lit(",")?;
                let rounds = c.field("rounds", |c| c.number("an integer"))?;
                ExperimentSpec::Fig16Calibration {
                    grid: CalibrationGrid {
                        cs_thresholds_dbm: cs,
                        capture_margins_db: margins,
                        sensing_sigmas_db: sigmas,
                    },
                    topologies,
                    rounds,
                }
            }
            "enterprise_scaling" => {
                let scenario_start = c.pos;
                let scenario_name = c.field("scenario", |c| c.ident().map(str::to_string))?;
                c.lit(",")?;
                let aps: usize = c.field("aps", |c| c.number("an integer"))?;
                c.lit(",")?;
                let topologies = c.field("topologies", |c| c.number("an integer"))?;
                c.lit(",")?;
                let rounds = c.field("rounds", |c| c.number("an integer"))?;
                let Some(scenario) = Scenario::by_name(&scenario_name, aps) else {
                    return Err(SpecParseError {
                        offset: scenario_start,
                        message: format!(
                            "unknown scenario `{scenario_name}` (expected enterprise_office, \
                             auditorium or dense_apartment; custom floors have no textual form)"
                        ),
                    });
                };
                ExperimentSpec::EnterpriseScaling {
                    scenario,
                    topologies,
                    rounds,
                }
            }
            "load_vs_gain" => {
                let duty_cycles = c.field("duty_cycles", |c| c.list(|c| c.number("a float")))?;
                c.lit(",")?;
                let topologies = c.field("topologies", |c| c.number("an integer"))?;
                c.lit(",")?;
                let rounds = c.field("rounds", |c| c.number("an integer"))?;
                c.lit(",")?;
                let speed_mps = c.field("speed_mps", |c| c.number("a float"))?;
                ExperimentSpec::LoadVsGain {
                    duty_cycles,
                    topologies,
                    rounds,
                    speed_mps,
                }
            }
            "ablation_tag_width" => {
                let widths = c.field("widths", |c| c.list(|c| c.number("an integer")))?;
                c.lit(",")?;
                let topologies = c.field("topologies", |c| c.number("an integer"))?;
                ExperimentSpec::TagWidth { widths, topologies }
            }
            "ablation_das_radius" => {
                let fractions = c.field("fractions", |c| {
                    c.list(|c| {
                        c.lit("(")?;
                        let lo = c.number("a float")?;
                        c.lit(",")?;
                        let hi = c.number("a float")?;
                        c.lit(")")?;
                        Ok((lo, hi))
                    })
                })?;
                c.lit(",")?;
                let topologies = c.field("topologies", |c| c.number("an integer"))?;
                ExperimentSpec::DasRadius {
                    fractions,
                    topologies,
                }
            }
            "ablation_antenna_wait" => {
                let windows_us = c.field("windows_us", |c| c.list(|c| c.number("an integer")))?;
                c.lit(",")?;
                let trials = c.field("trials", |c| c.number("an integer"))?;
                ExperimentSpec::AntennaWait { windows_us, trials }
            }
            other => {
                return Err(SpecParseError {
                    offset: 0,
                    message: format!("unknown experiment `{other}`"),
                })
            }
        };
        c.lit("}")?;
        if !c.rest().is_empty() {
            return c.err("trailing input after the closing `}`");
        }
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_names_are_the_figure_slugs() {
        assert_eq!(ExperimentSpec::fig03().name(), "fig03_naive_scaling_drop");
        assert_eq!(ExperimentSpec::fig15().name(), "fig15_three_ap_end_to_end");
        assert_eq!(
            ExperimentSpec::fig16(ContentionModel::Graph).name(),
            "fig16_eight_ap_simulation"
        );
        assert_eq!(
            ExperimentSpec::EnterpriseScaling {
                scenario: Scenario::auditorium(8),
                topologies: 1,
                rounds: 1,
            }
            .name(),
            "enterprise_scaling"
        );
    }

    #[test]
    fn spec_run_matches_the_legacy_runner() {
        let spec = ExperimentSpec::NaiveScalingDrop { topologies: 5 };
        let out = spec.run(1).expect_paired();
        let legacy = fig03_naive_scaling_drop(5, 1);
        assert_eq!(out.cas, legacy.cas);
        assert_eq!(out.das, legacy.das);
    }

    #[test]
    #[should_panic(expected = "expected paired samples")]
    fn expect_accessors_panic_with_the_variant_name() {
        ExperimentOutput::Ratios(vec![1.0]).expect_paired();
    }
}
