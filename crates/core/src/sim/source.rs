//! Topology sources: where a session's paired CAS/DAS deployments come from.

use midas_channel::topology::TopologyConfig;
use midas_channel::{Environment, SimRng};
use midas_net::deployment::{paper_das_config, paper_das_config_dense, PairedTopology};
use midas_net::scale::Scenario;
use midas_net::simulator::{MacKind, NetworkSimConfig};

/// A reproducible generator of paired CAS/DAS topologies — the first thing a
/// [`SessionBuilder`](crate::sim::SessionBuilder) composes.
///
/// A source owns everything layout-related: the propagation environment, the
/// antenna-placement config, client placement, and (for enterprise floors)
/// the association policy.  The library ships [`PairedRecipe`] for the
/// paper's layouts and implements the trait for the enterprise
/// [`Scenario`] library; custom floors implement it directly.
///
/// Determinism contract: [`TopologySource::build`] must be a pure function
/// of `seed` — two calls with the same seed return identical topologies —
/// because the session fans trials across threads.
pub trait TopologySource: Send + Sync {
    /// The propagation environment simulations over this source run in.
    fn environment(&self) -> Environment;

    /// Generates the paired deployment for one trial seed.
    fn build(&self, seed: u64) -> PairedTopology;

    /// Simulator configuration for one MAC variant at this source's scale.
    ///
    /// The default is the standard MIDAS/CAS config with an *infinite*
    /// interaction range (the paper-scale figures run untruncated);
    /// enterprise-scale sources override this to engage the finite-range
    /// spatial-index scan path.
    fn sim_config(&self, mac: MacKind, rounds: usize, seed: u64) -> NetworkSimConfig {
        let env = self.environment();
        let mut config = match mac {
            MacKind::Midas => NetworkSimConfig::midas(env, seed),
            MacKind::Cas => NetworkSimConfig::cas(env, seed),
        };
        config.rounds = rounds;
        config
    }
}

/// Which multi-AP layout a [`PairedRecipe`] generates.
#[derive(Debug, Clone, Copy, PartialEq)]
enum RecipeLayout {
    /// One AP centred in a square region of the given side length (m).
    Single { region_m: f64 },
    /// The §5.4 three-AP testbed layout (15 m AP spacing).
    Testbed3,
    /// The §5.5 eight-AP large-scale layout (60 × 60 m).
    LargeScale8,
}

/// The paper's paired-deployment recipes as a [`TopologySource`]: a layout
/// (single-AP / 3-AP testbed / 8-AP large-scale), an environment, and an
/// antenna-placement [`TopologyConfig`].
///
/// Each constructor reproduces the exact generator the corresponding
/// experiment runner historically used, so sessions over these recipes are
/// bit-identical to the pre-redesign free functions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairedRecipe {
    env: Environment,
    config: TopologyConfig,
    layout: RecipeLayout,
}

impl PairedRecipe {
    /// A single AP centred in a `region_m` × `region_m` area with the given
    /// placement config (the Figs. 7 / 13 generator).
    pub fn single_ap(env: Environment, config: TopologyConfig, region_m: f64) -> Self {
        PairedRecipe {
            env,
            config,
            layout: RecipeLayout::Single { region_m },
        }
    }

    /// The §5.4 three-AP testbed layout with the given placement config.
    pub fn three_ap(env: Environment, config: TopologyConfig) -> Self {
        PairedRecipe {
            env,
            config,
            layout: RecipeLayout::Testbed3,
        }
    }

    /// The §5.4 three-AP testbed under the paper's §7 placement guidance
    /// (Office A, DAS radius 50–75 % of coverage, 60° sectors) — the
    /// Figs. 12 / 15 recipe.
    pub fn three_ap_paper() -> Self {
        let env = Environment::office_a();
        PairedRecipe::three_ap(env, paper_das_config(&env, 4, 4))
    }

    /// The §5.5 eight-AP large-scale layout with the given placement config.
    pub fn eight_ap(env: Environment, config: TopologyConfig) -> Self {
        PairedRecipe {
            env,
            config,
            layout: RecipeLayout::LargeScale8,
        }
    }

    /// The §5.5 eight-AP large-scale layout under the paper's placement
    /// guidance with the dense-floor DAS-radius cap (the Fig. 16 recipe:
    /// 8 APs in 60 × 60 m put the nominal √(area/AP) ≈ 21 m spacing well
    /// under the coverage range, so the §7 rule is capped at 45 % of the
    /// spacing — see `paper_das_config_dense`).
    pub fn eight_ap_paper() -> Self {
        let env = Environment::open_plan();
        let spacing = (60.0f64 * 60.0 / 8.0).sqrt();
        PairedRecipe::eight_ap(env, paper_das_config_dense(&env, 4, 4, spacing))
    }

    /// The antenna-placement config this recipe deploys with.
    pub fn config(&self) -> &TopologyConfig {
        &self.config
    }
}

impl TopologySource for PairedRecipe {
    fn environment(&self) -> Environment {
        self.env
    }

    fn build(&self, seed: u64) -> PairedTopology {
        let mut rng = SimRng::new(seed);
        match self.layout {
            RecipeLayout::Single { region_m } => {
                PairedTopology::single_ap(&self.config, region_m, &mut rng)
            }
            RecipeLayout::Testbed3 => PairedTopology::three_ap(&self.config, &mut rng),
            RecipeLayout::LargeScale8 => {
                PairedTopology::eight_ap(&self.config, &self.env, &mut rng)
            }
        }
    }
}

/// Enterprise scenarios are topology sources: the floor grid, wall override
/// and association policy all live in the [`Scenario`], and the simulator
/// config carries the finite interaction range that engages the
/// spatial-index scan truncation at scale.
impl TopologySource for Scenario {
    fn environment(&self) -> Environment {
        Scenario::environment(self)
    }

    fn build(&self, seed: u64) -> PairedTopology {
        Scenario::build(self, seed)
            .unwrap_or_else(|e| panic!("scenario {} failed to build: {e}", self.name()))
    }

    fn sim_config(&self, mac: MacKind, rounds: usize, seed: u64) -> NetworkSimConfig {
        Scenario::sim_config(self, mac, rounds, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recipes_build_the_expected_layouts() {
        let single =
            PairedRecipe::single_ap(Environment::office_a(), TopologyConfig::das(4, 4), 40.0)
                .build(1);
        assert_eq!(single.das.aps.len(), 1);
        let three = PairedRecipe::three_ap_paper().build(2);
        assert_eq!(three.das.aps.len(), 3);
        assert_eq!(three.das.clients.len(), 12);
        let eight = PairedRecipe::eight_ap_paper().build(3);
        assert_eq!(eight.das.aps.len(), 8);
    }

    #[test]
    fn recipe_build_is_deterministic_in_the_seed() {
        let recipe = PairedRecipe::three_ap_paper();
        assert_eq!(recipe.build(7), recipe.build(7));
        assert_ne!(recipe.build(7), recipe.build(8));
    }

    #[test]
    fn recipe_build_matches_the_historical_generators() {
        // The session path must regenerate the exact topologies the
        // pre-redesign runner loops drew: SimRng::new(seed) straight into
        // the PairedTopology generator.
        let env = Environment::office_a();
        let cfg = paper_das_config(&env, 4, 4);
        let mut rng = SimRng::new(42);
        let legacy = PairedTopology::three_ap(&cfg, &mut rng);
        assert_eq!(PairedRecipe::three_ap_paper().build(42), legacy);
    }

    #[test]
    fn default_sim_config_is_paper_scale_and_scenarios_are_finite_range() {
        let recipe = PairedRecipe::three_ap_paper();
        let cfg = TopologySource::sim_config(&recipe, MacKind::Midas, 7, 9);
        assert_eq!(cfg.rounds, 7);
        assert!(cfg.interaction_range_m.is_infinite());

        let scenario = Scenario::enterprise_office(8);
        let cfg = TopologySource::sim_config(&scenario, MacKind::Cas, 5, 9);
        assert_eq!(cfg.rounds, 5);
        assert!(cfg.interaction_range_m.is_finite());
    }
}
