//! The session API: one composable entry point for every MIDAS experiment.
//!
//! Four PRs of per-figure free functions (`fig03_…` … `enterprise_scaling`,
//! plus duplicated `…_with_model` variants) are replaced by three
//! composable layers:
//!
//! 1. **[`TopologySource`]** — where paired CAS/DAS deployments come from:
//!    the paper's [`PairedRecipe`] layouts (single-AP, 3-AP testbed, 8-AP
//!    large-scale), the enterprise [`Scenario`](midas_net::scale::Scenario)
//!    library, or a custom impl.
//! 2. **[`SessionBuilder`] → [`Session`]** — composes a source with a
//!    [`ContentionModel`], a [`TrafficKind`] workload, round count, seed
//!    mix and worker count, then fans paired trials through the
//!    deterministic `SeedSweep` engine.  Results stream through the
//!    [`Observer`] trait: [`Accumulate`] rebuilds the full
//!    [`TopologyResult`](midas_net::simulator::TopologyResult) bit for
//!    bit, [`RunningSummary`] keeps fixed-size sums so long-horizon
//!    64-AP / 512-client runs hold peak memory flat in the round count.
//! 3. **[`ExperimentSpec`]** — every paper figure (and the beyond-paper
//!    enterprise sweep) as a declarative value with a typed
//!    [`ExperimentOutput`]; the benchmark harness and examples drive these
//!    instead of free functions.
//!
//! ## Migration from the free-function zoo
//!
//! | Old free function | Session-API replacement |
//! |---|---|
//! | `experiment::fig03_naive_scaling_drop(n, seed)` | `ExperimentSpec::NaiveScalingDrop { topologies: n }.run(seed)` |
//! | `experiment::fig08_09_capacity(env, k, n, seed)` | `ExperimentSpec::MuMimoCapacity { environment: env, antennas: k, topologies: n }.run(seed)` |
//! | `experiment::fig12_simultaneous_tx(n, seed)` | `ExperimentSpec::SimultaneousTx { topologies: n }.run(seed)` |
//! | `experiment::end_to_end_capacity(eight, n, r, seed)` | `ExperimentSpec::EndToEnd { eight_aps: eight, topologies: n, rounds: r, contention: ContentionModel::Graph }.run(seed)` |
//! | `experiment::end_to_end_capacity_with_model(…, model)` | same spec with `contention: model` |
//! | `spatial_reuse_trial(_with_model)` | `midas_net::spatial_reuse::trial(pair, env, rng, &model)` |
//! | `HiddenTerminalScenario::compare(_with_model)` | `HiddenTerminalScenario::comparison(spacing, rng, &model)` |
//! | bespoke `NetworkSimulator` loops | `SessionBuilder::new(source)…build()` + [`Session::run`] / [`Session::stream`] |
//!
//! ## Example
//!
//! ```
//! use midas::sim::{PairedRecipe, SessionBuilder, TrafficKind};
//! use midas_net::observer::RunningSummary;
//!
//! // The Fig. 15 testbed, but at 30 % duty-cycled traffic, streamed
//! // through fixed-size observers.
//! let session = SessionBuilder::new(PairedRecipe::three_ap_paper())
//!     .rounds(8)
//!     .traffic(TrafficKind::OnOff { duty: 0.3, mean_burst_rounds: 4.0 })
//!     .build();
//! for (cas, midas) in session.stream(3, 42, RunningSummary::new) {
//!     assert!(midas.mean_capacity() >= 0.0);
//!     assert!(cas.rounds() == 8);
//! }
//! ```

mod session;
mod source;
mod spec;

pub use session::{PairedSamples, Session, SessionBuilder, SessionSeries, SessionTrial};
pub use source::{PairedRecipe, TopologySource};
pub use spec::{ExperimentOutput, ExperimentSpec, LoadGainRow, SpecParseError};

// The building blocks a session composes, re-exported so `midas::sim` is a
// one-stop import for session users.
pub use midas_channel::FadingEngine;
pub use midas_net::capture::{ContentionModel, PhysicalConfig};
pub use midas_net::dynamics::{DynamicsSpec, MobilityModel, ReassociationSpec};
pub use midas_net::observer::{Accumulate, Observer, RoundRecord, RunningSummary, Tee};
pub use midas_net::simulator::{MacKind, ScanMode, StageTimings};
pub use midas_net::traffic::{Churn, Diurnal, FlashCrowd};
pub use midas_net::traffic::{FullBuffer, OnOff, Poisson, TrafficKind, TrafficModel};
