//! The session layer: composing a topology source, contention model,
//! traffic workload and observers into reproducible paired experiments.

use std::sync::Arc;

use crate::runner::SeedSweep;
use crate::sim::source::TopologySource;
use midas_channel::FadingEngine;
use midas_net::capture::ContentionModel;
use midas_net::deployment::PairedTopology;
use midas_net::dynamics::DynamicsSpec;
use midas_net::observer::Observer;
use midas_net::simulator::{MacKind, NetworkSimConfig, NetworkSimulator, TopologyResult};
use midas_net::traffic::TrafficKind;

/// Paired per-topology samples of a CAS metric and a DAS/MIDAS metric —
/// the container behind every CAS-vs-MIDAS CDF in the paper.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PairedSamples {
    /// CAS (baseline) samples, one per topology.
    pub cas: Vec<f64>,
    /// DAS / MIDAS samples, one per topology.
    pub das: Vec<f64>,
}

impl PairedSamples {
    /// Collects per-trial `(cas, das)` pairs, in trial order.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (f64, f64)>) -> Self {
        let mut out = PairedSamples::default();
        for (cas, das) in pairs {
            out.cas.push(cas);
            out.das.push(das);
        }
        out
    }

    /// Concatenates per-trial `(cas, das)` sample groups, in trial order —
    /// for runners that emit several samples per topology (e.g. one per
    /// client link).
    pub fn from_groups(groups: impl IntoIterator<Item = (Vec<f64>, Vec<f64>)>) -> Self {
        let mut out = PairedSamples::default();
        for (cas, das) in groups {
            out.cas.extend(cas);
            out.das.extend(das);
        }
        out
    }
}

/// The paired network-simulation series a [`Session::run`] produces — the
/// data behind the Figs. 15 / 16 comparisons.
#[derive(Debug, Clone, Default)]
pub struct SessionSeries {
    /// Mean network capacity per topology (bit/s/Hz) — the aggregate
    /// series.
    pub network: PairedSamples,
    /// Mean capacity delivered to each client per round (bit/s/Hz), pooled
    /// across topologies and paired by client (same positions in both
    /// deployments).  The CDF of these is the paper's Fig. 16 comparison:
    /// a client far from its co-located array vs the same client near a
    /// distributed antenna.
    pub per_client: PairedSamples,
}

/// Builder for a [`Session`]: composes the pieces the pre-redesign API
/// spread over a dozen free-function signatures.
///
/// Defaults reproduce the paper's experiments: binary-graph contention,
/// full-buffer traffic, 20 TXOP rounds, identity seed mix, ambient worker
/// count (`MIDAS_THREADS`).
///
/// ```
/// use midas::sim::{PairedRecipe, SessionBuilder};
/// use midas_net::capture::ContentionModel;
///
/// let session = SessionBuilder::new(PairedRecipe::three_ap_paper())
///     .rounds(5)
///     .contention(ContentionModel::Graph)
///     .build();
/// let series = session.run(2, 7);
/// assert_eq!(series.network.cas.len(), 2);
/// ```
#[derive(Clone)]
pub struct SessionBuilder {
    source: Arc<dyn TopologySource>,
    contention: ContentionModel,
    traffic: TrafficKind,
    rounds: usize,
    tag_width: Option<usize>,
    coherence_interval_rounds: Option<usize>,
    fading: FadingEngine,
    evolve_threads: usize,
    stage_profiling: bool,
    dynamics: Option<DynamicsSpec>,
    mix: (u64, u64),
    threads: Option<usize>,
}

impl SessionBuilder {
    /// Starts a builder over a topology source with the library defaults.
    pub fn new(source: impl TopologySource + 'static) -> Self {
        SessionBuilder {
            source: Arc::new(source),
            contention: ContentionModel::Graph,
            traffic: TrafficKind::FullBuffer,
            rounds: 20,
            tag_width: None,
            coherence_interval_rounds: None,
            fading: FadingEngine::Legacy,
            evolve_threads: 1,
            stage_profiling: false,
            dynamics: None,
            mix: (1, 0),
            threads: None,
        }
    }

    /// Sets the contention semantics (default: [`ContentionModel::Graph`],
    /// the paper's binary carrier-sense graph).
    pub fn contention(mut self, contention: ContentionModel) -> Self {
        self.contention = contention;
        self
    }

    /// Sets the downlink traffic workload (default:
    /// [`TrafficKind::FullBuffer`], the paper's saturation model).
    pub fn traffic(mut self, traffic: TrafficKind) -> Self {
        self.traffic = traffic;
        self
    }

    /// Sets the number of TXOP rounds per simulation (default: 20).
    pub fn rounds(mut self, rounds: usize) -> Self {
        self.rounds = rounds;
        self
    }

    /// Overrides how many antennas each client's packets are tagged with
    /// (MIDAS only; default: the simulator config's 2).
    pub fn tag_width(mut self, tag_width: usize) -> Self {
        self.tag_width = Some(tag_width);
        self
    }

    /// Sets the channel coherence interval in TXOP rounds (default: 1 —
    /// channels evolve every round, the paper's legacy behaviour).  Larger
    /// intervals reuse the cached channel realisation (and its precoding
    /// inputs) for `interval` consecutive rounds, evolving once per
    /// interval with a correspondingly longer delay.
    pub fn coherence_interval_rounds(mut self, interval: usize) -> Self {
        self.coherence_interval_rounds = Some(interval.max(1));
        self
    }

    /// Selects the small-scale fading engine (default:
    /// [`FadingEngine::Legacy`], which keeps every historical series
    /// byte-identical).  [`FadingEngine::Counter`] derives each innovation
    /// from a stateless counter-based stream keyed by
    /// `(trial_seed, ap, link, round)`, enabling lazy active-set evolution
    /// and bit-identical intra-trial parallel evolve; its series are
    /// statistically equivalent but not draw-for-draw identical to Legacy.
    pub fn fading_engine(mut self, engine: FadingEngine) -> Self {
        self.fading = engine;
        self
    }

    /// Sets how many threads each trial's counter-engine channel evolution
    /// may use (default: 1).  Results are bit-identical at any setting; the
    /// knob has no effect under [`FadingEngine::Legacy`], whose pinned draw
    /// order is inherently serial.
    pub fn evolve_threads(mut self, threads: usize) -> Self {
        self.evolve_threads = threads.max(1);
        self
    }

    /// Enables per-round stage timing accumulation (default: off).  When
    /// on, each simulator tracks wall-clock per pipeline stage and reports
    /// the totals through [`Observer::on_finish`].
    pub fn stage_profiling(mut self, enabled: bool) -> Self {
        self.stage_profiling = enabled;
        self
    }

    /// Installs a long-horizon dynamics layer (default: off).  When set,
    /// every trial's simulators run the per-round mutation stage — client
    /// mobility, re-association/handoff and the large-scale gain refresh
    /// it implies — ahead of channel evolution.  `None` (the default)
    /// keeps every session byte-identical to the static pipeline.
    pub fn dynamics(mut self, spec: DynamicsSpec) -> Self {
        self.dynamics = spec.is_active().then_some(spec);
        self
    }

    /// Sets the per-trial seed mix `trial_seed = seed ^ (t * prime +
    /// offset)` (default: identity).  The experiment specs pin each paper
    /// figure's historical mix here, which is what keeps their series
    /// bit-identical to the pre-redesign runners.
    pub fn seed_mix(mut self, prime: u64, offset: u64) -> Self {
        self.mix = (prime, offset);
        self
    }

    /// Overrides the sweep worker count (default: ambient
    /// `MIDAS_THREADS` / available parallelism).  Series are bit-identical
    /// at any setting.
    pub fn threads(mut self, workers: usize) -> Self {
        self.threads = Some(workers);
        self
    }

    /// Finalises the session.
    pub fn build(self) -> Session {
        Session { inner: self }
    }
}

/// A composed, reusable experiment session: runs paired CAS/MIDAS network
/// simulations over seeded topology sweeps, streaming results through
/// observers.
///
/// Construct via [`SessionBuilder`]; see the [module docs](crate::sim) for
/// the migration map from the old free functions.
#[derive(Clone)]
pub struct Session {
    inner: SessionBuilder,
}

impl Session {
    /// The topology source trials build from.
    pub fn source(&self) -> &dyn TopologySource {
        self.inner.source.as_ref()
    }

    /// The sweep engine this session fans trials through (mix and worker
    /// overrides applied).
    pub fn sweep(&self, seed: u64) -> SeedSweep {
        let mut sweep = SeedSweep::new(seed).with_mix(self.inner.mix.0, self.inner.mix.1);
        if let Some(workers) = self.inner.threads {
            sweep = sweep.with_threads(workers);
        }
        sweep
    }

    /// Materialises one trial: builds the paired topology at a pre-mixed
    /// seed and exposes paired simulators over it.  [`Session::run`] and
    /// friends call this per sweep index; it is public so callers with
    /// bespoke per-trial logic (extra diagnostics, custom observers) can
    /// compose their own sweeps via [`Session::run_trials`].
    pub fn trial(&self, index: usize, trial_seed: u64) -> SessionTrial<'_> {
        SessionTrial {
            session: self,
            index,
            seed: trial_seed,
            pair: self.inner.source.build(trial_seed),
        }
    }

    /// Runs `topologies` paired trials and accumulates the network and
    /// per-client series (the Figs. 15 / 16 shape).
    pub fn run(&self, topologies: usize, seed: u64) -> SessionSeries {
        let rows = self.run_trials(topologies, seed, &|trial: &SessionTrial<'_>| {
            let cas = trial.simulate(MacKind::Cas);
            let das = trial.simulate(MacKind::Midas);
            (
                (cas.mean_capacity(), das.mean_capacity()),
                (
                    cas.per_client_mean_capacity(),
                    das.per_client_mean_capacity(),
                ),
            )
        });
        let mut out = SessionSeries::default();
        for (net, clients) in rows {
            out.network.cas.push(net.0);
            out.network.das.push(net.1);
            out.per_client.cas.extend(clients.0);
            out.per_client.das.extend(clients.1);
        }
        out
    }

    /// Runs `topologies` trials through the sweep engine, mapping each
    /// materialised [`SessionTrial`] with `f` — the extension point for
    /// runners that need more than the standard paired series (per-AP
    /// diagnostics, contention-degree scans, custom observers).  Samples
    /// come back in trial order, bit-identical at any worker count.
    pub fn run_trials<T: Send>(
        &self,
        topologies: usize,
        seed: u64,
        f: &(dyn Fn(&SessionTrial<'_>) -> T + Sync),
    ) -> Vec<T> {
        self.sweep(seed)
            .run(topologies, &|t: usize, s: u64| f(&self.trial(t, s)))
    }

    /// Streaming variant of [`Session::run`]: per trial, builds one
    /// observer pair via `make` (CAS first, then MIDAS), streams both
    /// simulations through them, and returns the pairs in trial order.
    /// With fixed-size observers (e.g.
    /// [`RunningSummary`](midas_net::observer::RunningSummary)) peak memory
    /// is flat in the round count.
    pub fn stream<O, F>(&self, topologies: usize, seed: u64, make: F) -> Vec<(O, O)>
    where
        O: Observer + Send,
        F: Fn() -> O + Sync,
    {
        self.run_trials(topologies, seed, &|trial: &SessionTrial<'_>| {
            let mut cas = make();
            trial.observe(MacKind::Cas, &mut cas);
            let mut das = make();
            trial.observe(MacKind::Midas, &mut das);
            (cas, das)
        })
    }
}

/// One materialised trial of a [`Session`]: the paired topology at one
/// mixed seed, plus paired simulator access.
pub struct SessionTrial<'a> {
    session: &'a Session,
    index: usize,
    seed: u64,
    pair: PairedTopology,
}

impl SessionTrial<'_> {
    /// The zero-based trial index within the sweep.
    pub fn index(&self) -> usize {
        self.index
    }

    /// The mixed trial seed everything in this trial derives from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The paired CAS/DAS topology of this trial.
    pub fn pair(&self) -> &PairedTopology {
        &self.pair
    }

    /// The simulator configuration for one MAC variant: the source's
    /// config with the session's contention model (and tag-width override,
    /// if any) applied.
    pub fn config(&self, mac: MacKind) -> NetworkSimConfig {
        let inner = &self.session.inner;
        let mut config = inner.source.sim_config(mac, inner.rounds, self.seed);
        config.contention = inner.contention;
        if let Some(w) = inner.tag_width {
            config.tag_width = w;
        }
        if let Some(interval) = inner.coherence_interval_rounds {
            config.coherence_interval_rounds = interval;
        }
        config.fading = inner.fading;
        config.evolve_threads = inner.evolve_threads;
        config.dynamics = inner.dynamics;
        config
    }

    /// Builds the simulator for one MAC variant ([`MacKind::Cas`] runs the
    /// co-located deployment, [`MacKind::Midas`] the distributed one) with
    /// the session's traffic workload installed.
    pub fn simulator(&self, mac: MacKind) -> NetworkSimulator {
        let topo = match mac {
            MacKind::Cas => self.pair.cas.clone(),
            MacKind::Midas => self.pair.das.clone(),
        };
        let sim = NetworkSimulator::new(topo, self.config(mac))
            .with_traffic_kind(self.session.inner.traffic);
        if self.session.inner.stage_profiling {
            sim.with_stage_profiling()
        } else {
            sim
        }
    }

    /// Runs one MAC variant to completion, accumulating the full
    /// [`TopologyResult`].
    pub fn simulate(&self, mac: MacKind) -> TopologyResult {
        self.simulator(mac).run()
    }

    /// Runs one MAC variant, streaming rounds into `observer` instead of
    /// accumulating — the memory-bounded path for long-horizon runs.
    pub fn observe(&self, mac: MacKind, observer: &mut dyn Observer) {
        self.simulator(mac).run_with(observer);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::source::PairedRecipe;
    use midas_net::observer::{Accumulate, RunningSummary};

    fn quick_session() -> Session {
        SessionBuilder::new(PairedRecipe::three_ap_paper())
            .rounds(4)
            .seed_mix(193, 61)
            .build()
    }

    #[test]
    fn paired_samples_collect_in_trial_order() {
        let s = PairedSamples::from_pairs([(1.0, 2.0), (3.0, 4.0)]);
        assert_eq!(s.cas, vec![1.0, 3.0]);
        assert_eq!(s.das, vec![2.0, 4.0]);
        let g = PairedSamples::from_groups([(vec![1.0], vec![2.0, 3.0]), (vec![4.0], vec![])]);
        assert_eq!(g.cas, vec![1.0, 4.0]);
        assert_eq!(g.das, vec![2.0, 3.0]);
    }

    #[test]
    fn session_run_produces_full_series() {
        let series = quick_session().run(3, 11);
        assert_eq!(series.network.cas.len(), 3);
        assert_eq!(series.network.das.len(), 3);
        // 3 topologies × 12 clients, paired by position.
        assert_eq!(series.per_client.cas.len(), 36);
        assert_eq!(series.per_client.das.len(), 36);
        assert!(series.network.das.iter().all(|c| c.is_finite() && *c > 0.0));
    }

    #[test]
    fn session_trial_exposes_the_mixed_seed_and_pair() {
        let session = quick_session();
        let sweep = session.sweep(11);
        let trial = session.trial(2, sweep.trial_seed(2));
        assert_eq!(trial.seed(), 11 ^ (2 * 193 + 61));
        assert_eq!(trial.pair().das.aps.len(), 3);
        assert_eq!(trial.config(MacKind::Midas).rounds, 4);
    }

    #[test]
    fn streamed_accumulate_equals_simulate() {
        let session = quick_session();
        let trial = session.trial(0, session.sweep(5).trial_seed(0));
        let direct = trial.simulate(MacKind::Midas);
        let mut acc = Accumulate::new();
        trial.observe(MacKind::Midas, &mut acc);
        assert_eq!(acc.into_result(), direct);
    }

    #[test]
    fn stream_returns_one_observer_pair_per_trial() {
        let session = quick_session();
        let pairs = session.stream(2, 9, RunningSummary::new);
        assert_eq!(pairs.len(), 2);
        for (cas, das) in &pairs {
            assert_eq!(cas.rounds(), 4);
            assert_eq!(das.rounds(), 4);
            assert!(das.mean_capacity() > 0.0);
        }
    }

    #[test]
    fn coherence_interval_one_is_bit_identical_to_the_default() {
        let default = quick_session().run(2, 17);
        let explicit = SessionBuilder::new(PairedRecipe::three_ap_paper())
            .rounds(4)
            .seed_mix(193, 61)
            .coherence_interval_rounds(1)
            .build()
            .run(2, 17);
        assert_eq!(default.network.cas, explicit.network.cas);
        assert_eq!(default.network.das, explicit.network.das);
        assert_eq!(default.per_client.das, explicit.per_client.das);
    }

    #[test]
    fn longer_coherence_interval_changes_but_keeps_finite_series() {
        let slow_fading = SessionBuilder::new(PairedRecipe::three_ap_paper())
            .rounds(4)
            .seed_mix(193, 61)
            .coherence_interval_rounds(4)
            .build()
            .run(2, 17);
        let baseline = quick_session().run(2, 17);
        assert!(slow_fading
            .network
            .das
            .iter()
            .all(|c| c.is_finite() && *c > 0.0));
        // Caching the realisation across the whole run consumes less fading
        // RNG, so the series must differ from evolve-every-round.
        assert_ne!(slow_fading.network.das, baseline.network.das);
        // And it is still deterministic.
        let again = SessionBuilder::new(PairedRecipe::three_ap_paper())
            .rounds(4)
            .seed_mix(193, 61)
            .coherence_interval_rounds(4)
            .build()
            .run(2, 17);
        assert_eq!(slow_fading.network.das, again.network.das);
    }

    #[test]
    fn thread_override_does_not_change_the_series() {
        let serial = SessionBuilder::new(PairedRecipe::three_ap_paper())
            .rounds(3)
            .seed_mix(193, 61)
            .threads(1)
            .build()
            .run(4, 21);
        let parallel = SessionBuilder::new(PairedRecipe::three_ap_paper())
            .rounds(3)
            .seed_mix(193, 61)
            .threads(4)
            .build()
            .run(4, 21);
        assert_eq!(serial.network.cas, parallel.network.cas);
        assert_eq!(serial.network.das, parallel.network.das);
        assert_eq!(serial.per_client.das, parallel.per_client.das);
    }
}
