//! Experiment runners — one per table/figure of the paper's evaluation (§5).
//!
//! Each function regenerates the data series behind one figure.  All
//! runners are deterministic in the supplied seed and execute through the
//! session layer ([`crate::sim`]): the multi-AP experiments compose a
//! [`PairedRecipe`] / [`Scenario`] topology source into a [`Session`] and
//! fan trials through the shared [`SeedSweep`] engine, so every series is
//! bit-identical at any thread count (`MIDAS_THREADS`).  Callers should
//! prefer driving these through [`crate::sim::ExperimentSpec`] values —
//! the functions remain as the implementation layer the specs dispatch to.

use crate::config::SystemConfig;
use crate::runner::SeedSweep;
use crate::sim::{PairedRecipe, Session, SessionBuilder, SessionTrial};
use crate::system::SingleApSystem;
use midas_channel::geometry::{Point, Rect};
use midas_channel::topology::{single_ap, TopologyConfig};
use midas_channel::{ChannelModel, Environment, EnvironmentKind, FadingEngine, SimRng};
use midas_mac::client_select::{select_clients_midas, select_clients_random};
use midas_mac::drr::DrrScheduler;
use midas_mac::tagging::TagTable;
use midas_net::capture::{ContentionModel, PhysicalConfig};
use midas_net::contention::ContentionGraph;
use midas_net::coverage::{compare_deadzones, DeadzoneComparison};
use midas_net::hidden_terminal::{HiddenTerminalComparison, HiddenTerminalScenario};
use midas_net::scale::scenario::INTERACTION_MARGIN_DB;
use midas_net::scale::Scenario;
use midas_net::simulator::MacKind;
use midas_net::spatial_reuse;
use midas_phy::precoder::{
    make_precoder, NaiveScaledPrecoder, OptimalPrecoder, PowerBalancedPrecoder, Precoder,
    PrecoderKind, ZfbfPrecoder,
};
use midas_phy::sounding::{SoundingConfig, SoundingProcess};

pub use crate::sim::{PairedSamples, SessionSeries as EndToEndSeries};

/// Fig. 3 — CDF of the capacity *drop* caused by naïve per-antenna power
/// scaling (unconstrained ZFBF capacity minus naïvely-scaled capacity) for
/// 4×4 MU-MIMO, CAS vs DAS.
pub fn fig03_naive_scaling_drop(topologies: usize, seed: u64) -> PairedSamples {
    let sweep = SeedSweep::new(seed).with_mix(7919, 1);
    PairedSamples::from_pairs(sweep.run(topologies, &|_t: usize, s: u64| {
        let sys = SingleApSystem::generate(&SystemConfig::default(), s);
        let drop = |ch: &midas_channel::ChannelMatrix| {
            let zf = ZfbfPrecoder.precode_channel(ch);
            let naive = NaiveScaledPrecoder.precode_channel(ch);
            (zf.sum_capacity - naive.sum_capacity).max(0.0)
        };
        (drop(sys.cas_channel()), drop(sys.das_channel()))
    }))
}

/// Fig. 7 — CDF of SISO link SNR (dB) across clients, CAS vs DAS, using the
/// paper's greedy client→antenna mapping (strongest pair first, each antenna
/// used once).
pub fn fig07_link_snr(topologies: usize, seed: u64) -> PairedSamples {
    let env = Environment::office_a();
    let session = SessionBuilder::new(PairedRecipe::single_ap(
        env,
        TopologyConfig::das(4, 4),
        40.0,
    ))
    .seed_mix(6151, 3)
    .build();
    PairedSamples::from_groups(
        session.run_trials(topologies, seed, &|trial: &SessionTrial<'_>| {
            let pair = trial.pair();
            let mut model = ChannelModel::new(env, trial.seed());
            let mut cas = Vec::new();
            let mut das = Vec::new();
            for (topo, sink) in [(&pair.cas, &mut cas), (&pair.das, &mut das)] {
                let clients = topo.clients_of(0);
                let ch = model.realize(&topo.aps[0], &clients);
                // Greedy mapping: repeatedly take the strongest remaining
                // (client, antenna) pair, then exclude both.
                let mut free_clients: Vec<usize> = (0..clients.len()).collect();
                let mut free_antennas: Vec<usize> = (0..4).collect();
                while !free_clients.is_empty() && !free_antennas.is_empty() {
                    let mut best = (free_clients[0], free_antennas[0], f64::NEG_INFINITY);
                    for &c in &free_clients {
                        for &a in &free_antennas {
                            let snr = ch.siso_snr_db(c, a);
                            if snr > best.2 {
                                best = (c, a, snr);
                            }
                        }
                    }
                    sink.push(best.2);
                    free_clients.retain(|&x| x != best.0);
                    free_antennas.retain(|&x| x != best.1);
                }
            }
            (cas, das)
        }),
    )
}

/// Figs. 8 and 9 — MU-MIMO sum-capacity CDF (bit/s/Hz), CAS (baseline
/// precoding) vs MIDAS (power-balanced precoding), for the given antenna /
/// client count and office environment.
pub fn fig08_09_capacity(
    environment: EnvironmentKind,
    antennas: usize,
    topologies: usize,
    seed: u64,
) -> PairedSamples {
    let config = SystemConfig {
        environment,
        antennas,
        clients: antennas,
        ..SystemConfig::default()
    };
    let sweep = SeedSweep::new(seed).with_mix(2861, 11);
    PairedSamples::from_pairs(sweep.run(topologies, &|_t: usize, s: u64| {
        let sys = SingleApSystem::generate(&config, s);
        let cmp = sys.downlink_comparison();
        (cmp.cas_capacity, cmp.midas_capacity)
    }))
}

/// Fig. 10 — impact of the power-balanced ("smart") precoder on CAS and on
/// DAS separately: four capacity series over the same topologies.
#[derive(Debug, Clone, Default)]
pub struct SmartPrecodingSeries {
    /// CAS with the naïve baseline precoder.
    pub cas_naive: Vec<f64>,
    /// CAS with the power-balanced precoder.
    pub cas_smart: Vec<f64>,
    /// DAS with the naïve baseline precoder.
    pub das_naive: Vec<f64>,
    /// DAS with the power-balanced precoder.
    pub das_smart: Vec<f64>,
}

/// Runs the Fig. 10 experiment (4×4, Office B in the paper).
pub fn fig10_smart_precoding(topologies: usize, seed: u64) -> SmartPrecodingSeries {
    let config = SystemConfig::default().with_environment(EnvironmentKind::OfficeB);
    let sweep = SeedSweep::new(seed).with_mix(4513, 17);
    let rows = sweep.run(topologies, &|_t: usize, s: u64| {
        let sys = SingleApSystem::generate(&config, s);
        let naive = NaiveScaledPrecoder;
        let smart = PowerBalancedPrecoder::default();
        [
            naive.precode_channel(sys.cas_channel()).sum_capacity,
            smart.precode_channel(sys.cas_channel()).sum_capacity,
            naive.precode_channel(sys.das_channel()).sum_capacity,
            smart.precode_channel(sys.das_channel()).sum_capacity,
        ]
    });
    let mut out = SmartPrecodingSeries::default();
    for [cn, cs, dn, ds] in rows {
        out.cas_naive.push(cn);
        out.cas_smart.push(cs);
        out.das_naive.push(dn);
        out.das_smart.push(ds);
    }
    out
}

/// Fig. 11 — per-topology capacity of the MIDAS precoder vs the numerically
/// optimal precoder.  `stale_csi` reproduces the "testbed" panel, where the
/// optimal precoder's long compute time means it is applied to an outdated
/// channel (the paper's explanation for MIDAS occasionally winning).
pub fn fig11_optimal_comparison(topologies: usize, stale_csi: bool, seed: u64) -> PairedSamples {
    // `cas` field holds the optimal precoder series, `das` the MIDAS series.
    let env = Environment::office_a();
    let sounding = SoundingProcess::new(SoundingConfig::default());
    let sweep = SeedSweep::new(seed).with_mix(3571, 23);
    PairedSamples::from_pairs(sweep.run(topologies, &|_t: usize, s: u64| {
        let mut rng = SimRng::new(s);
        let cfg = TopologyConfig::das(4, 4);
        let region = Rect::new(Point::new(0.0, 0.0), 40.0, 40.0);
        let topo = single_ap(&cfg, region, &mut rng);
        let mut model = ChannelModel::new(env, s);
        let clients = topo.clients_of(0);
        let ch = model.realize(&topo.aps[0], &clients);

        let midas = PowerBalancedPrecoder::default().precode_channel(&ch);
        let optimal = if stale_csi {
            // The optimal precoder is computed on CSI sounded ~2 s ago (the
            // MATLAB solve time quoted in §5.2.3); by transmission time the
            // channel has moved on.
            let mut est_rng = SimRng::new(s ^ 0xBEEF);
            let old = sounding.estimate(&ch.h, &mut est_rng);
            let old_ch = midas_channel::ChannelMatrix {
                h: old,
                large_scale: ch.large_scale.clone(),
                tx_power_mw: ch.tx_power_mw,
                noise_mw: ch.noise_mw,
            };
            let evolved = model.evolve(&old_ch, 2.0);
            let v = OptimalPrecoder::with_iterations(1500)
                .precode_channel(&evolved)
                .v;
            // Evaluate the stale precoder against the *current* channel.
            midas_phy::precoder::Precoding::evaluate(
                PrecoderKind::Optimal,
                &ch.h,
                v,
                ch.noise_mw,
                0,
            )
        } else {
            OptimalPrecoder::with_iterations(1500).precode_channel(&ch)
        };
        (optimal.sum_capacity, midas.sum_capacity)
    }))
}

/// Fig. 12 — ratio of simultaneous transmissions (MIDAS / CAS) over random
/// 3-AP topologies.  Each trial derives its own contention RNG from the
/// mixed trial seed, so the series is independent of execution order.
pub fn fig12_simultaneous_tx(topologies: usize, seed: u64) -> Vec<f64> {
    let session = SessionBuilder::new(PairedRecipe::three_ap_paper())
        .seed_mix(1409, 31)
        .build();
    // Single source of truth: the reuse analysis senses in the same
    // environment the recipe deploys in.
    let env = session.source().environment();
    session.run_trials(topologies, seed, &|trial: &SessionTrial<'_>| {
        let mut reuse_rng = SimRng::new(trial.seed() ^ 0x5EED);
        spatial_reuse::trial(trial.pair(), &env, &mut reuse_rng, &ContentionModel::Graph).ratio()
    })
}

/// Fig. 13 / §5.3.3 — dead-zone comparison over random DAS deployments.
pub fn fig13_deadzones(deployments: usize, seed: u64) -> Vec<DeadzoneComparison> {
    let env = Environment::office_b();
    let radius = env.coverage_range_m() * 0.9;
    let cfg = TopologyConfig {
        das_radius_min_m: 0.4 * radius,
        das_radius_max_m: 0.7 * radius,
        ..TopologyConfig::das(4, 4)
    };
    let session = SessionBuilder::new(PairedRecipe::single_ap(env, cfg, 3.0 * radius))
        .seed_mix(947, 41)
        .build();
    session.run_trials(deployments, seed, &|trial: &SessionTrial<'_>| {
        compare_deadzones(
            trial.pair(),
            &env,
            radius,
            0.5,
            seed ^ (trial.index() as u64 * 947 + 43),
        )
    })
}

/// §5.3.4 — hidden-terminal spot comparison over random antenna deployments.
/// Each deployment draws from an RNG derived from its own mixed trial seed.
pub fn sec534_hidden_terminals(deployments: usize, seed: u64) -> Vec<HiddenTerminalComparison> {
    let scenario = HiddenTerminalScenario::new(Environment::office_a());
    let sweep = SeedSweep::new(seed).with_mix(523, 89);
    sweep.run(deployments, &|_d: usize, s: u64| {
        let mut rng = SimRng::new(s);
        scenario.comparison(1.0, &mut rng, &ContentionModel::Graph)
    })
}

/// Fig. 14 — virtual packet tagging: capacity with tagging-driven client
/// selection vs random client selection, when only 2 of 4 antennas are
/// available and 4 clients are backlogged.  The `cas` field holds the random
/// selection, `das` the tagged selection.
pub fn fig14_packet_tagging(topologies: usize, seed: u64) -> PairedSamples {
    let config = SystemConfig::default();
    let sweep = SeedSweep::new(seed).with_mix(677, 53);
    PairedSamples::from_pairs(sweep.run(topologies, &|_t: usize, s: u64| {
        let sys = SingleApSystem::generate(&config, s);
        let ch = sys.das_channel();
        let mut rng = SimRng::new(s ^ 0xFACE);

        // Two of the four antennas are available this round.
        let available = rng.choose_indices(4, 2);
        let backlogged: Vec<usize> = (0..4).collect();

        // MIDAS: tagging + DRR over the available antennas.
        let rssi: Vec<Vec<f64>> = (0..4)
            .map(|c| (0..4).map(|a| ch.mean_rssi_dbm(c, a)).collect())
            .collect();
        let tags = TagTable::from_rssi(&rssi, config.tag_width);
        let drr = DrrScheduler::new(4);
        let eligible = tags.filter_clients(&backlogged, &available);
        let mut tagged_clients = select_clients_midas(&available, &eligible, &tags, &drr);
        // The Fig. 14 experiment always transmits one stream per available
        // antenna; if tagging filled fewer slots (no packet tagged to one of
        // the antennas), top up with the remaining clients that hear the
        // available antennas best, as the paper's "more appropriate group of
        // two clients" does.
        while tagged_clients.len() < available.len() {
            let best = backlogged
                .iter()
                .copied()
                .filter(|c| !tagged_clients.contains(c))
                .max_by(|&a, &b| {
                    let score = |c: usize| {
                        available
                            .iter()
                            .map(|&k| rssi[c][k])
                            .fold(f64::NEG_INFINITY, f64::max)
                    };
                    score(a).partial_cmp(&score(b)).unwrap()
                });
            match best {
                Some(c) => tagged_clients.push(c),
                None => break,
            }
        }
        // Random selection baseline.
        let random_clients = select_clients_random(available.len(), &backlogged, &mut rng);

        let precoder = make_precoder(config.midas_precoder);
        let capacity = |clients: &[usize]| {
            let sub = ch.select(clients, &available);
            precoder.precode_channel(&sub).sum_capacity
        };
        (capacity(&random_clients), capacity(&tagged_clients))
    }))
}

/// Deprecated alias: the network series of [`end_to_end_series`] under the
/// legacy binary contention graph.
#[deprecated(
    since = "0.2.0",
    note = "drive `midas::sim::ExperimentSpec::EndToEnd { contention: ContentionModel::Graph, .. }` \
            or call `end_to_end_series(..).network`"
)]
pub fn end_to_end_capacity(
    eight_aps: bool,
    topologies: usize,
    rounds: usize,
    seed: u64,
) -> PairedSamples {
    end_to_end_series(eight_aps, topologies, rounds, seed, ContentionModel::Graph).network
}

/// Deprecated alias: the network series of [`end_to_end_series`].
#[deprecated(
    since = "0.2.0",
    note = "drive `midas::sim::ExperimentSpec::EndToEnd` or call \
            `end_to_end_series(..).network` — the single model-parameterised entry point"
)]
pub fn end_to_end_capacity_with_model(
    eight_aps: bool,
    topologies: usize,
    rounds: usize,
    seed: u64,
    contention: ContentionModel,
) -> PairedSamples {
    end_to_end_series(eight_aps, topologies, rounds, seed, contention).network
}

/// The [`Session`] behind the Figs. 15 / 16 experiment: the paper layout
/// recipe ([`PairedRecipe::eight_ap_paper`] / [`three_ap_paper`]) composed
/// with the given contention model at the historical seed mix.
///
/// [`three_ap_paper`]: PairedRecipe::three_ap_paper
pub fn end_to_end_session(eight_aps: bool, rounds: usize, contention: ContentionModel) -> Session {
    end_to_end_builder(eight_aps, rounds, contention).build()
}

/// The [`SessionBuilder`] behind [`end_to_end_session`], exposed so engine
/// variants compose the identical recipe/mix before overriding knobs.
fn end_to_end_builder(
    eight_aps: bool,
    rounds: usize,
    contention: ContentionModel,
) -> SessionBuilder {
    let recipe = if eight_aps {
        PairedRecipe::eight_ap_paper()
    } else {
        PairedRecipe::three_ap_paper()
    };
    SessionBuilder::new(recipe)
        .rounds(rounds)
        .contention(contention)
        .seed_mix(193, 61)
}

/// Figs. 15 / 16 — end-to-end network capacity of CAS vs MIDAS over random
/// multi-AP topologies (3-AP testbed layout or 8-AP large-scale layout)
/// under an explicit contention model; the single model-parameterised
/// entry point ([`ContentionModel::Graph`] reproduces the legacy
/// binary-graph series bit-for-bit).  Both MACs run the same model — the
/// paper's testbed CAS is subject to the same physical carrier sensing and
/// capture effects as MIDAS, only with co-located vantage points.
pub fn end_to_end_series(
    eight_aps: bool,
    topologies: usize,
    rounds: usize,
    seed: u64,
    contention: ContentionModel,
) -> EndToEndSeries {
    end_to_end_session(eight_aps, rounds, contention).run(topologies, seed)
}

/// [`end_to_end_series`] under an explicit [`FadingEngine`]: the identical
/// workload (same recipe, contention, historical seed mix), differing only
/// in where small-scale innovations come from.  `FadingEngine::Legacy`
/// reproduces [`end_to_end_series`] bit for bit; `FadingEngine::Counter`
/// runs the lazy counter-keyed path and is the series the Fig. 16 fidelity
/// band is re-checked against under the new engine.
pub fn end_to_end_series_with_engine(
    eight_aps: bool,
    topologies: usize,
    rounds: usize,
    seed: u64,
    contention: ContentionModel,
    engine: FadingEngine,
) -> EndToEndSeries {
    end_to_end_builder(eight_aps, rounds, contention)
        .fading_engine(engine)
        .build()
        .run(topologies, seed)
}

/// The Fig. 16 headline band the calibration scores against: the median
/// per-client capacity gain of MIDAS over CAS at 8 APs.  The paper reports
/// "more than 150 %" (2.5×); this reproduction's accepted band is
/// +50 %…+150 % — the physical model closes the gap from the graph model's
/// sub-zero network gain to comfortably past half the paper's headline,
/// and gains beyond the paper's own number would mean the CAS baseline
/// collapsed rather than MIDAS winning.  Cells are scored by their
/// distance to this band (fractional: 0.5 = +50 %).
pub const FIG16_GAIN_BAND: (f64, f64) = (0.5, 1.5);

/// The {CS threshold × capture margin × sensing σ} grid the Fig. 16
/// calibration sweeps.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationGrid {
    /// Energy-detect CS thresholds to try (dBm).
    pub cs_thresholds_dbm: Vec<f64>,
    /// Capture margins to try (dB over the MCS-0 decode threshold).
    pub capture_margins_db: Vec<f64>,
    /// Sensing-field shadowing spreads to try (dB).
    pub sensing_sigmas_db: Vec<f64>,
}

impl Default for CalibrationGrid {
    /// The default grid brackets the region the coarse exploratory sweeps
    /// (this PR) localised the paper band in: CS thresholds well below
    /// every preset's −76 dBm CCA (the paper's testbed CAS almost never
    /// won concurrent transmissions, so the physical CCA must be markedly
    /// more sensitive), rate-adaptation margins of two to three MCS steps
    /// (what silences the collision-prone cell-edge links), and sensing
    /// spreads up to the preset shadowing.
    fn default() -> Self {
        CalibrationGrid {
            cs_thresholds_dbm: vec![-88.0, -86.0, -84.0],
            capture_margins_db: vec![6.0, 8.0, 10.0],
            sensing_sigmas_db: vec![3.0, 4.5],
        }
    }
}

/// One scored cell of the Fig. 16 calibration sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibrationCell {
    /// The physical-model parameters this cell ran with.
    pub config: PhysicalConfig,
    /// Median CAS network capacity over the topologies (bit/s/Hz).
    pub cas_network_median: f64,
    /// Median MIDAS network capacity over the topologies (bit/s/Hz).
    pub das_network_median: f64,
    /// Fractional gain in median network capacity.
    pub network_gain: f64,
    /// Median per-client capacity under CAS (bit/s/Hz per round, pooled
    /// across topologies).
    pub cas_client_median: f64,
    /// Median per-client capacity under MIDAS.
    pub das_client_median: f64,
    /// Fractional gain in the median of the per-client CDF — the Fig. 16
    /// headline the cell is scored on.
    pub client_median_gain: f64,
    /// Distance of `client_median_gain` to [`FIG16_GAIN_BAND`] (0 inside).
    pub score: f64,
}

impl CalibrationCell {
    /// Distance of a gain to the paper band (0 when inside it).
    fn band_distance(gain: f64) -> f64 {
        let (lo, hi) = FIG16_GAIN_BAND;
        (lo - gain).max(gain - hi).max(0.0)
    }
}

/// Fig. 16 calibration — grids {CS threshold × capture margin × sensing σ}
/// through the 8-AP end-to-end simulation under
/// [`ContentionModel::Physical`], scoring each cell's MIDAS-over-CAS median
/// gain against the paper's Fig. 16 band.  Cells are returned in grid order
/// (thresholds outermost); [`best_calibration_cell`] picks the winner that
/// [`PhysicalConfig::calibrated`] promotes.
pub fn fig16_calibration(
    grid: &CalibrationGrid,
    topologies: usize,
    rounds: usize,
    seed: u64,
) -> Vec<CalibrationCell> {
    let mut cells = Vec::new();
    for &cs in &grid.cs_thresholds_dbm {
        for &margin in &grid.capture_margins_db {
            for &sigma in &grid.sensing_sigmas_db {
                let config = PhysicalConfig {
                    cs_threshold_dbm: cs,
                    capture_margin_db: margin,
                    sensing_sigma_db: Some(sigma),
                };
                let s = end_to_end_series(
                    true,
                    topologies,
                    rounds,
                    seed,
                    ContentionModel::Physical(config),
                );
                let median = |v: &[f64]| midas_net::metrics::Cdf::new(v).median();
                let cas_network_median = median(&s.network.cas);
                let das_network_median = median(&s.network.das);
                let cas_client_median = median(&s.per_client.cas);
                let das_client_median = median(&s.per_client.das);
                let client_median_gain =
                    midas_net::metrics::relative_gain(das_client_median, cas_client_median);
                cells.push(CalibrationCell {
                    config,
                    cas_network_median,
                    das_network_median,
                    network_gain: midas_net::metrics::relative_gain(
                        das_network_median,
                        cas_network_median,
                    ),
                    cas_client_median,
                    das_client_median,
                    client_median_gain,
                    score: CalibrationCell::band_distance(client_median_gain),
                });
            }
        }
    }
    cells
}

/// The winning calibration cell: minimal distance to the paper band, ties
/// broken towards the client gain closest to the band's midpoint (+100 %)
/// — a cell deep inside the band keeps the headline in-band under seed and
/// scale changes in a way band-edge cells do not.  The rule is
/// deterministic, so re-running the sweep re-derives the same promoted
/// defaults.
pub fn best_calibration_cell(cells: &[CalibrationCell]) -> Option<&CalibrationCell> {
    let midpoint = (FIG16_GAIN_BAND.0 + FIG16_GAIN_BAND.1) / 2.0;
    cells.iter().min_by(|a, b| {
        (a.score, (a.client_median_gain - midpoint).abs())
            .partial_cmp(&(b.score, (b.client_median_gain - midpoint).abs()))
            .expect("calibration scores are finite")
    })
}

/// Per-topology series of one enterprise-scale scenario at one AP count.
#[derive(Debug, Clone, Default)]
pub struct EnterpriseScalingSeries {
    /// CAS mean network capacity per topology (bit/s/Hz).
    pub cas: Vec<f64>,
    /// MIDAS mean network capacity per topology (bit/s/Hz).
    pub das: Vec<f64>,
    /// CAS mean concurrent streams per round, per topology.
    pub cas_streams: Vec<f64>,
    /// MIDAS mean concurrent streams per round, per topology.
    pub das_streams: Vec<f64>,
    /// MIDAS per-AP mean capacity (bit/s/Hz), concatenated across
    /// topologies — the per-AP diagnostic behind the Fig. 16 calibration
    /// work (starved vs interference-drowned APs).
    pub das_per_ap_capacity: Vec<f64>,
    /// MIDAS per-AP duty cycle (fraction of rounds transmitting),
    /// concatenated across topologies.
    pub das_per_ap_duty: Vec<f64>,
    /// Mean contention degree of the DAS deployment per topology: how many
    /// other APs each AP shares a carrier-sense domain with (range-limited
    /// indexed adjacency) — the structural explanation for duty-cycle
    /// collapse on over-dense floors.
    pub das_contention_degree: Vec<f64>,
}

/// Enterprise scaling — the beyond-Fig.-16 experiment: end-to-end CAS vs
/// MIDAS capacity of a named [`Scenario`] (`midas_net::scale`) over random
/// floor realisations at the given AP count.  Runs with the finite
/// interaction range that activates the spatial-index scan truncation, which
/// is what keeps 64-AP / 512-client floors tractable.
pub fn enterprise_scaling(
    scenario: &Scenario,
    topologies: usize,
    rounds: usize,
    seed: u64,
) -> EnterpriseScalingSeries {
    enterprise_scaling_with_engine(scenario, topologies, rounds, seed, FadingEngine::Legacy)
}

/// [`enterprise_scaling`] under an explicit [`FadingEngine`] — the same
/// scenario workload including the contention-degree diagnostic, with
/// `FadingEngine::Legacy` reproducing [`enterprise_scaling`] bit for bit
/// and `FadingEngine::Counter` exercising the lazy counter-keyed evolution
/// path (the configuration behind the counter benchmark cells).
pub fn enterprise_scaling_with_engine(
    scenario: &Scenario,
    topologies: usize,
    rounds: usize,
    seed: u64,
    engine: FadingEngine,
) -> EnterpriseScalingSeries {
    let env = scenario.environment();
    let session = SessionBuilder::new(*scenario)
        .rounds(rounds)
        .seed_mix(1021, 101)
        .fading_engine(engine)
        .build();
    let rows = session.run_trials(topologies, seed, &|trial: &SessionTrial<'_>| {
        // Structural diagnostic: range-limited AP contention degree of the
        // DAS deployment (same frozen shadowing field as the simulator).
        let graph = ContentionGraph::new(env, trial.seed() ^ 0x5151);
        let adjacency = graph.ap_adjacency_indexed(
            &trial.pair().das,
            env.interaction_range_m(INTERACTION_MARGIN_DB),
        );
        let degree = adjacency
            .iter()
            .map(|row| row.iter().filter(|&&x| x).count())
            .sum::<usize>() as f64
            / adjacency.len().max(1) as f64;
        let cas = trial.simulate(MacKind::Cas);
        let das = trial.simulate(MacKind::Midas);
        (
            cas.mean_capacity(),
            das.mean_capacity(),
            cas.mean_streams(),
            das.mean_streams(),
            das.per_ap_mean_capacity(),
            das.per_ap_duty_cycle(),
            degree,
        )
    });
    let mut out = EnterpriseScalingSeries::default();
    for (cas, das, cas_streams, das_streams, per_ap_cap, per_ap_duty, degree) in rows {
        out.cas.push(cas);
        out.das.push(das);
        out.cas_streams.push(cas_streams);
        out.das_streams.push(das_streams);
        out.das_per_ap_capacity.extend(per_ap_cap);
        out.das_per_ap_duty.extend(per_ap_duty);
        out.das_contention_degree.push(degree);
    }
    out
}

/// Ablation — tag-width sweep (§3.2.4 discusses 1, 2 and "all" antennas per
/// client): mean end-to-end capacity of the 3-AP MIDAS network per tag width.
pub fn ablation_tag_width(widths: &[usize], topologies: usize, seed: u64) -> Vec<(usize, f64)> {
    widths
        .iter()
        .map(|&w| {
            let session = SessionBuilder::new(PairedRecipe::three_ap_paper())
                .rounds(10)
                .tag_width(w)
                .seed_mix(389, 71)
                .build();
            let caps = session.run_trials(topologies, seed, &|trial: &SessionTrial<'_>| {
                trial.simulate(MacKind::Midas).mean_capacity()
            });
            (w, caps.iter().sum::<f64>() / topologies as f64)
        })
        .collect()
}

/// Ablation — DAS antenna placement radius sweep (§7 recommends 50–75 % of
/// the CAS coverage range): median single-AP MU-MIMO capacity per radius
/// fraction band.
pub fn ablation_das_radius(
    fractions: &[(f64, f64)],
    topologies: usize,
    seed: u64,
) -> Vec<((f64, f64), f64)> {
    let env = Environment::office_a();
    let range = env.coverage_range_m();
    fractions
        .iter()
        .map(|&(lo, hi)| {
            let cfg = TopologyConfig {
                das_radius_min_m: lo * range,
                das_radius_max_m: hi * range,
                ..TopologyConfig::das(4, 4)
            };
            let session = SessionBuilder::new(PairedRecipe::single_ap(env, cfg, 3.0 * range))
                .seed_mix(271, 83)
                .build();
            let caps = session.run_trials(topologies, seed, &|trial: &SessionTrial<'_>| {
                let mut model = ChannelModel::new(env, trial.seed());
                let clients = trial.pair().das.clients_of(0);
                let ch = model.realize(&trial.pair().das.aps[0], &clients);
                PowerBalancedPrecoder::default()
                    .precode_channel(&ch)
                    .sum_capacity
            });
            ((lo, hi), midas_net::metrics::Cdf::new(&caps).median())
        })
        .collect()
}

/// Ablation — opportunistic-wait window sweep (§3.2.3): fraction of planning
/// attempts in which waiting up to the window adds at least one antenna,
/// over random busy patterns.  Busy patterns are derived per trial from the
/// mixed seed, so every window is evaluated against the same patterns.
pub fn ablation_antenna_wait(windows_us: &[u64], trials: usize, seed: u64) -> Vec<(u64, f64)> {
    use midas_mac::antenna_select::select_opportunistic;
    use midas_mac::carrier_sense::CarrierSense;
    let sweep = SeedSweep::new(seed).with_mix(149, 97);
    windows_us
        .iter()
        .map(|&w| {
            let gains = sweep.run(trials, &|_t: usize, s: u64| {
                let mut rng = SimRng::new(s);
                let mut cs = CarrierSense::new(4, -76.0);
                let now = 10_000u64;
                // Random busy pattern: each non-primary antenna busy with 50%
                // probability for up to 60 us beyond `now`.
                for a in 1..4 {
                    if rng.bernoulli(0.5) {
                        cs.observe(a, -50.0, now + rng.uniform_usize(60) as u64 + 1);
                    }
                }
                let baseline = select_opportunistic(&cs, 0, now, 0).len();
                let with_wait = select_opportunistic(&cs, 0, now, w).len();
                with_wait > baseline
            });
            let gained = gains.iter().filter(|&&g| g).count();
            (w, gained as f64 / trials as f64)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use midas_net::metrics::Cdf;

    #[test]
    fn fig03_das_drop_exceeds_cas_drop() {
        let s = fig03_naive_scaling_drop(15, 1);
        assert_eq!(s.cas.len(), 15);
        assert!(Cdf::new(&s.das).median() > Cdf::new(&s.cas).median());
    }

    #[test]
    fn fig07_das_links_have_higher_median_snr() {
        let s = fig07_link_snr(15, 2);
        let gain = Cdf::new(&s.das).median() - Cdf::new(&s.cas).median();
        assert!(gain > 1.0, "median DAS link gain {gain:.1} dB");
    }

    #[test]
    fn fig08_midas_beats_cas_for_both_antenna_counts() {
        for antennas in [2usize, 4] {
            let s = fig08_09_capacity(EnvironmentKind::OfficeA, antennas, 12, 3);
            let gain =
                (Cdf::new(&s.das).median() - Cdf::new(&s.cas).median()) / Cdf::new(&s.cas).median();
            assert!(gain > 0.1, "{antennas} antennas: gain {gain:.2}");
        }
    }

    #[test]
    fn fig10_smart_precoding_helps_das_more_than_cas() {
        let s = fig10_smart_precoding(15, 4);
        let cas_gain = Cdf::new(&s.cas_smart).median() - Cdf::new(&s.cas_naive).median();
        let das_gain = Cdf::new(&s.das_smart).median() - Cdf::new(&s.das_naive).median();
        assert!(
            das_gain > cas_gain,
            "DAS gain {das_gain:.2} vs CAS gain {cas_gain:.2}"
        );
    }

    #[test]
    fn fig11_midas_is_close_to_optimal_in_simulation() {
        let s = fig11_optimal_comparison(8, false, 5);
        for (&midas, &optimal) in s.das.iter().zip(s.cas.iter()) {
            assert!(midas <= optimal + 1e-6);
            assert!(midas / optimal > 0.85, "ratio {}", midas / optimal);
        }
    }

    #[test]
    fn fig12_median_ratio_exceeds_one() {
        let ratios = fig12_simultaneous_tx(20, 6);
        assert!(Cdf::new(&ratios).median() > 1.0);
    }

    #[test]
    fn fig14_tagged_selection_beats_random() {
        let s = fig14_packet_tagging(25, 7);
        assert!(Cdf::new(&s.das).median() > Cdf::new(&s.cas).median());
    }

    #[test]
    fn end_to_end_midas_beats_cas_on_three_aps() {
        // Per-topology variance is high at this small scale, so aggregate a
        // handful of topologies; the bench runs the full-size version.
        let s = end_to_end_series(false, 6, 10, 100, ContentionModel::Graph).network;
        let das: f64 = s.das.iter().sum();
        let cas: f64 = s.cas.iter().sum();
        assert!(das > cas, "MIDAS {das:.1} vs CAS {cas:.1}");
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_capacity_shims_match_the_series_runner() {
        // The migration shims are the network view of `end_to_end_series`;
        // the per-client series must align with topologies × clients.
        let series = end_to_end_series(false, 3, 5, 7, ContentionModel::Graph);
        let capacity = end_to_end_capacity(false, 3, 5, 7);
        assert_eq!(series.network.cas, capacity.cas);
        assert_eq!(series.network.das, capacity.das);
        let with_model = end_to_end_capacity_with_model(false, 3, 5, 7, ContentionModel::Graph);
        assert_eq!(series.network.cas, with_model.cas);
        assert_eq!(series.per_client.cas.len(), 3 * 12);
        assert_eq!(series.per_client.das.len(), 3 * 12);
        assert!(series.per_client.das.iter().all(|c| c.is_finite()));
    }

    #[test]
    fn fig16_calibration_scores_cells_against_the_band() {
        let grid = CalibrationGrid {
            cs_thresholds_dbm: vec![-86.0],
            capture_margins_db: vec![10.0],
            sensing_sigmas_db: vec![3.0],
        };
        let cells = fig16_calibration(&grid, 2, 4, 42);
        assert_eq!(cells.len(), 1);
        let cell = &cells[0];
        assert_eq!(cell.config.cs_threshold_dbm, -86.0);
        assert!(cell.cas_network_median.is_finite() && cell.cas_network_median > 0.0);
        assert!(cell.das_network_median.is_finite() && cell.das_network_median > 0.0);
        // The score is exactly the distance of the client gain to the band.
        let (lo, hi) = FIG16_GAIN_BAND;
        let expect = (lo - cell.client_median_gain)
            .max(cell.client_median_gain - hi)
            .max(0.0);
        assert_eq!(cell.score, expect);
        assert_eq!(best_calibration_cell(&cells).unwrap(), cell);
        assert!(best_calibration_cell(&[]).is_none());
    }

    #[test]
    fn best_calibration_cell_prefers_in_band_then_band_centre() {
        let mk = |gain: f64, score: f64| CalibrationCell {
            config: PhysicalConfig::calibrated(),
            cas_network_median: 1.0,
            das_network_median: 1.0,
            network_gain: 0.0,
            cas_client_median: 1.0,
            das_client_median: 1.0 + gain,
            client_median_gain: gain,
            score,
        };
        // In-band beats out-of-band regardless of gain size.
        let cells = vec![mk(2.0, 0.5), mk(0.6, 0.0), mk(0.95, 0.0)];
        let best = best_calibration_cell(&cells).unwrap();
        // Ties inside the band resolve towards the band midpoint (+100 %).
        assert_eq!(best.client_median_gain, 0.95);
    }

    #[test]
    fn enterprise_scaling_produces_full_series_at_small_scale() {
        let scenario = Scenario::enterprise_office(8);
        let s = enterprise_scaling(&scenario, 2, 4, 42);
        assert_eq!(s.cas.len(), 2);
        assert_eq!(s.das.len(), 2);
        assert_eq!(s.das_per_ap_capacity.len(), 2 * 8);
        assert_eq!(s.das_per_ap_duty.len(), 2 * 8);
        assert!(s.das.iter().all(|c| c.is_finite() && *c > 0.0));
        assert!(s.das_per_ap_duty.iter().all(|d| (0.0..=1.0).contains(d)));
        assert_eq!(s.das_contention_degree.len(), 2);
        assert!(s
            .das_contention_degree
            .iter()
            .all(|d| (0.0..=7.0).contains(d)));
    }

    #[test]
    fn ablation_runners_produce_one_row_per_setting() {
        let tag = ablation_tag_width(&[1, 2], 1, 9);
        assert_eq!(tag.len(), 2);
        let radius = ablation_das_radius(&[(0.2, 0.4), (0.5, 0.75)], 4, 10);
        assert_eq!(radius.len(), 2);
        let wait = ablation_antenna_wait(&[0, 34], 200, 11);
        assert_eq!(wait.len(), 2);
        // Waiting a DIFS can only help or leave unchanged.
        assert!(wait[1].1 >= wait[0].1);
    }
}
