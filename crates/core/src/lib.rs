//! # midas
//!
//! Top-level crate of the MIDAS (CoNEXT'14) reproduction: *Multiple-Input
//! Distributed Antenna Systems* for 802.11ac MU-MIMO.
//!
//! MIDAS couples a distributed-antenna (DAS) deployment of an 802.11ac AP
//! with three software mechanisms:
//!
//! 1. **Power-balanced ZFBF precoding** under the per-antenna power
//!    constraint (reverse water-filling, §3.1.2) — `midas_phy`.
//! 2. **Per-antenna carrier sensing** with opportunistic antenna selection
//!    (§3.2.2–3.2.3) — `midas_mac`.
//! 3. **Virtual packet tagging + antenna-specific DRR client selection**
//!    (§3.2.4–3.2.5) — `midas_mac`.
//!
//! This crate assembles those pieces into a small, high-level API
//! ([`SingleApSystem`], [`config::SystemConfig`]) and into the composable
//! session layer ([`sim`]): topology sources, paired experiment sessions,
//! pluggable traffic models, streaming observers, and one declarative
//! [`sim::ExperimentSpec`] per table/figure of the paper's evaluation,
//! which the benchmark harness (`crates/bench`) and the examples drive.
//! The per-figure runner functions live in [`experiment`] and execute
//! through the session machinery.
//!
//! ## Quick start
//!
//! ```
//! use midas::prelude::*;
//!
//! // One 4-antenna AP, four single-antenna clients, in the enterprise office.
//! let config = SystemConfig::default();
//! let system = SingleApSystem::generate(&config, 42);
//!
//! // Capacity of a 4x4 MU-MIMO downlink transmission under MIDAS and under a
//! // conventional co-located 802.11ac AP.
//! let outcome = system.downlink_comparison();
//! assert!(outcome.midas_capacity > 0.0);
//! assert!(outcome.cas_capacity > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod experiment;
pub mod runner;
pub mod sim;
pub mod system;

pub use config::SystemConfig;
pub use runner::SeedSweep;
pub use sim::{ExperimentOutput, ExperimentSpec, Session, SessionBuilder};
pub use system::{DownlinkOutcome, SingleApSystem};

/// Convenience re-exports for users of the library.
pub mod prelude {
    pub use crate::config::SystemConfig;
    pub use crate::sim::{
        ExperimentOutput, ExperimentSpec, PairedRecipe, Session, SessionBuilder, TopologySource,
    };
    pub use crate::system::{DownlinkOutcome, SingleApSystem};
    pub use midas_channel::{DeploymentKind, Environment, EnvironmentKind, SimRng};
    pub use midas_net::metrics::Cdf;
    pub use midas_phy::precoder::{Precoder, PrecoderKind};
}
