//! High-level system configuration.

use midas_channel::{Environment, EnvironmentKind};
use midas_phy::precoder::PrecoderKind;

/// Configuration of a single-AP MIDAS / CAS system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemConfig {
    /// Propagation environment preset.
    pub environment: EnvironmentKind,
    /// Number of AP antennas (the paper uses up to 4).
    pub antennas: usize,
    /// Number of associated single-antenna clients.
    pub clients: usize,
    /// Precoder used by the MIDAS (DAS) variant.
    pub midas_precoder: PrecoderKind,
    /// Precoder used by the CAS baseline.
    pub cas_precoder: PrecoderKind,
    /// Number of antennas each client's packets are tagged with (§3.2.4).
    pub tag_width: usize,
    /// Side length (metres) of the square region clients are placed in.
    pub region_size_m: f64,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            environment: EnvironmentKind::OfficeA,
            antennas: 4,
            clients: 4,
            midas_precoder: PrecoderKind::PowerBalanced,
            cas_precoder: PrecoderKind::NaiveScaled,
            tag_width: 2,
            region_size_m: 40.0,
        }
    }
}

impl SystemConfig {
    /// The environment preset resolved to its full parameter set.
    pub fn environment(&self) -> Environment {
        Environment::preset(self.environment)
    }

    /// A 2×2 variant of this configuration (two antennas, two clients).
    pub fn two_by_two(mut self) -> Self {
        self.antennas = 2;
        self.clients = 2;
        self
    }

    /// Switches the environment preset.
    pub fn with_environment(mut self, kind: EnvironmentKind) -> Self {
        self.environment = kind;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_headline_setup() {
        let c = SystemConfig::default();
        assert_eq!(c.antennas, 4);
        assert_eq!(c.clients, 4);
        assert_eq!(c.tag_width, 2);
        assert_eq!(c.midas_precoder, PrecoderKind::PowerBalanced);
        assert_eq!(c.cas_precoder, PrecoderKind::NaiveScaled);
    }

    #[test]
    fn builders_adjust_fields() {
        let c = SystemConfig::default()
            .two_by_two()
            .with_environment(EnvironmentKind::OfficeB);
        assert_eq!(c.antennas, 2);
        assert_eq!(c.clients, 2);
        assert_eq!(c.environment, EnvironmentKind::OfficeB);
        assert_eq!(c.environment().kind, EnvironmentKind::OfficeB);
    }
}
