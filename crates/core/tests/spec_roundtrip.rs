//! Golden tests for the canonical textual form of [`ExperimentSpec`].
//!
//! The capacity-planning service content-addresses its result cache by a
//! hash over the spec encoding, so the textual form must be *stable*: one
//! spec, one string, on every platform and in every future PR.  These
//! goldens pin the exact `Display` output for every variant, and the
//! round-trip tests pin that `FromStr` inverts it.

use midas::experiment::CalibrationGrid;
use midas::sim::{ContentionModel, ExperimentSpec, PhysicalConfig};
use midas_channel::EnvironmentKind;
use midas_net::scale::Scenario;

/// Every variant at a representative scale, with its pinned canonical form.
fn golden_specs() -> Vec<(ExperimentSpec, &'static str)> {
    vec![
        (
            ExperimentSpec::fig03(),
            "fig03_naive_scaling_drop{topologies=60}",
        ),
        (ExperimentSpec::fig07(), "fig07_link_snr{topologies=60}"),
        (
            ExperimentSpec::fig08_09(EnvironmentKind::OfficeA, 4),
            "fig08_09_capacity{environment=office_a,antennas=4,topologies=60}",
        ),
        (
            ExperimentSpec::fig08_09(EnvironmentKind::OfficeB, 8),
            "fig08_09_capacity{environment=office_b,antennas=8,topologies=60}",
        ),
        (
            ExperimentSpec::fig10(),
            "fig10_smart_precoding{topologies=60}",
        ),
        (
            ExperimentSpec::fig11(true),
            "fig11_optimal_comparison{topologies=20,stale_csi=true}",
        ),
        (
            ExperimentSpec::fig12(),
            "fig12_simultaneous_tx{topologies=30}",
        ),
        (ExperimentSpec::fig13(), "fig13_deadzone{deployments=10}"),
        (
            ExperimentSpec::sec534(),
            "sec534_hidden_terminals{deployments=10}",
        ),
        (
            ExperimentSpec::fig14(),
            "fig14_packet_tagging{topologies=60}",
        ),
        (
            ExperimentSpec::fig15(),
            "fig15_three_ap_end_to_end{topologies=30,rounds=15,contention=graph}",
        ),
        (
            ExperimentSpec::fig16(ContentionModel::Graph),
            "fig16_eight_ap_simulation{topologies=15,rounds=10,contention=graph}",
        ),
        (
            ExperimentSpec::fig16(ContentionModel::physical_calibrated()),
            "fig16_eight_ap_simulation{topologies=15,rounds=10,contention=physical(\
             cs_threshold_dbm=-86.0,capture_margin_db=10.0,sensing_sigma_db=3.0)}",
        ),
        (
            ExperimentSpec::EndToEnd {
                eight_aps: true,
                topologies: 2,
                rounds: 3,
                contention: ContentionModel::Physical(PhysicalConfig {
                    cs_threshold_dbm: -82.0,
                    capture_margin_db: 6.0,
                    sensing_sigma_db: None,
                }),
            },
            "fig16_eight_ap_simulation{topologies=2,rounds=3,contention=physical(\
             cs_threshold_dbm=-82.0,capture_margin_db=6.0,sensing_sigma_db=none)}",
        ),
        (
            ExperimentSpec::Fig16Calibration {
                grid: CalibrationGrid::default(),
                topologies: 2,
                rounds: 5,
            },
            "fig16_calibration{cs_thresholds_dbm=[-88.0,-86.0,-84.0],\
             capture_margins_db=[6.0,8.0,10.0],sensing_sigmas_db=[3.0,4.5],\
             topologies=2,rounds=5}",
        ),
        (
            ExperimentSpec::EnterpriseScaling {
                scenario: Scenario::enterprise_office(64),
                topologies: 3,
                rounds: 10,
            },
            "enterprise_scaling{scenario=enterprise_office,aps=64,topologies=3,rounds=10}",
        ),
        (
            ExperimentSpec::EnterpriseScaling {
                scenario: Scenario::auditorium(16),
                topologies: 2,
                rounds: 5,
            },
            "enterprise_scaling{scenario=auditorium,aps=16,topologies=2,rounds=5}",
        ),
        (
            ExperimentSpec::LoadVsGain {
                duty_cycles: vec![0.1, 0.5, 1.0],
                topologies: 4,
                rounds: 12,
                speed_mps: 1.2,
            },
            "load_vs_gain{duty_cycles=[0.1,0.5,1.0],topologies=4,rounds=12,speed_mps=1.2}",
        ),
        (
            ExperimentSpec::TagWidth {
                widths: vec![1, 2, 4],
                topologies: 60,
            },
            "ablation_tag_width{widths=[1,2,4],topologies=60}",
        ),
        (
            ExperimentSpec::DasRadius {
                fractions: vec![(0.25, 0.5), (0.5, 0.75)],
                topologies: 60,
            },
            "ablation_das_radius{fractions=[(0.25,0.5),(0.5,0.75)],topologies=60}",
        ),
        (
            ExperimentSpec::AntennaWait {
                windows_us: vec![0, 10, 20],
                trials: 100,
            },
            "ablation_antenna_wait{windows_us=[0,10,20],trials=100}",
        ),
    ]
}

#[test]
fn display_matches_the_pinned_goldens() {
    for (spec, golden) in golden_specs() {
        assert_eq!(spec.to_string(), *golden, "golden drifted for {spec:?}");
    }
}

#[test]
fn from_str_inverts_display_for_every_variant() {
    for (spec, golden) in golden_specs() {
        let parsed: ExperimentSpec = golden.parse().unwrap_or_else(|e| {
            panic!("canonical form failed to parse: {golden}\n  {e}");
        });
        assert_eq!(parsed, spec, "round-trip changed the spec for {golden}");
        // And the re-encoding is a fixed point.
        assert_eq!(parsed.to_string(), *golden);
    }
}

#[test]
fn display_is_stable_across_clones_and_repeated_calls() {
    let spec = ExperimentSpec::fig16(ContentionModel::physical_calibrated());
    assert_eq!(spec.to_string(), spec.clone().to_string());
    assert_eq!(spec.to_string(), spec.to_string());
}

#[test]
fn parse_errors_carry_offsets_and_messages() {
    let err = "no_such_experiment{topologies=1}"
        .parse::<ExperimentSpec>()
        .unwrap_err();
    assert!(
        err.message.contains("unknown experiment"),
        "message: {}",
        err.message
    );

    let err = "fig03_naive_scaling_drop{topologies=banana}"
        .parse::<ExperimentSpec>()
        .unwrap_err();
    assert!(err.offset > 0, "offset should point into the input");
    assert!(
        err.message.contains("expected an integer"),
        "message: {}",
        err.message
    );

    let err = "enterprise_scaling{scenario=warehouse,aps=8,topologies=1,rounds=1}"
        .parse::<ExperimentSpec>()
        .unwrap_err();
    assert!(
        err.message.contains("unknown scenario"),
        "message: {}",
        err.message
    );

    // Trailing garbage after a well-formed spec is rejected.
    let err = "fig07_link_snr{topologies=60}xx"
        .parse::<ExperimentSpec>()
        .unwrap_err();
    assert!(err.message.contains("trailing input"), "{}", err.message);
}

#[test]
fn custom_scenarios_render_as_custom_and_do_not_parse() {
    let mut scenario = Scenario::enterprise_office(8);
    scenario.grid.clients_per_ap = 3; // no longer the library recipe
    let spec = ExperimentSpec::EnterpriseScaling {
        scenario,
        topologies: 1,
        rounds: 1,
    };
    let text = spec.to_string();
    assert!(text.contains("scenario=custom"), "{text}");
    assert!(text.parse::<ExperimentSpec>().is_err());
}
