//! Paper-fidelity suite: tolerance-banded assertions for every
//! paper-anchored headline number this reproduction claims.
//!
//! Unlike the bit-exact goldens in `runner_determinism.rs` (which pin that
//! refactors don't perturb a single ulp), these tests pin that the
//! *physics* stays inside an accepted band around what the paper reports.
//! Each test cites the paper section, the paper's number, and the band
//! this reproduction accepts — so a later change can tighten a band
//! deliberately, but cannot silently regress a headline.
//!
//! The suite runs at the bench seed (0x11DA5) and bench scale, so the
//! numbers here are exactly the ones the corresponding figure targets
//! print.  CI runs this file as its own named step ("Paper fidelity") to
//! keep physics regressions distinguishable from unit-test failures.

use midas::experiment::{
    end_to_end_series, end_to_end_series_with_engine, fig12_simultaneous_tx,
    sec534_hidden_terminals, FIG16_GAIN_BAND,
};
use midas_channel::FadingEngine;
use midas_net::capture::{ContentionModel, PhysicalConfig};
use midas_net::metrics::{relative_gain, Cdf};

/// The bench seed (`midas_bench::BENCH_SEED`; not imported to keep this
/// crate's dev-dependencies acyclic).
const SEED: u64 = 0x11DA5;

/// §5.3.1 / Fig. 12 — ratio of simultaneous transmissions, MIDAS / CAS,
/// over random 3-AP topologies whose APs all overhear each other.
///
/// Paper: the median ratio is well above 1 (the Fig. 12 CDF's median sits
/// near 2×: per-antenna carrier sensing roughly doubles the concurrent
/// transmissions a shared contention domain supports).
///
/// Accepted band: **[1.1, 2.5]** — this reproduction's propagation model
/// yields a median of 1.25 at the bench seed and scale (per-antenna
/// sensing wins spatial reuse, but our frozen-shadowing office reproduces
/// fewer sensing holes than the paper's testbed walls did).
#[test]
fn fig12_simultaneous_tx_ratio_is_in_band() {
    // Same (topologies, seed) as the fig12_simultaneous_tx bench target.
    let ratios = fig12_simultaneous_tx(30, SEED);
    let median = Cdf::new(&ratios).median();
    assert!(
        (1.1..=2.5).contains(&median),
        "Fig. 12 median simultaneous-tx ratio {median:.3} outside accepted band [1.1, 2.5] \
         (paper: ~2x)"
    );
}

/// §5.3.4 — fraction of CAS hidden-terminal spots removed by the DAS
/// deployment, at the paper's 1 m sampling grid.
///
/// Paper: "≈ 94 % of the hidden-terminal spots disappear" when each AP's
/// antennas are pushed outwards — some antenna of AP 1 can then sense
/// some antenna of AP 2, which restores carrier sensing between the
/// transmitters.
///
/// Accepted band: **[0.85, 1.0]** — this reproduction removes 100 % of
/// the spots at the bench seed and scale (3740 CAS spots, 0 DAS spots
/// over 10 deployments); the paper's residual 6 % comes from wall
/// geometry this model does not reproduce.
#[test]
fn sec534_hidden_terminal_reduction_is_in_band() {
    // Same (deployments, seed) as the sec534_hidden_terminals bench target.
    let comparisons = sec534_hidden_terminals(10, SEED);
    let cas: usize = comparisons.iter().map(|c| c.cas_spots).sum();
    let das: usize = comparisons.iter().map(|c| c.das_spots).sum();
    assert!(cas > 0, "CAS deployment must exhibit hidden-terminal spots");
    let reduction = 1.0 - das as f64 / cas as f64;
    assert!(
        (0.85..=1.0).contains(&reduction),
        "§5.3.4 hidden-terminal reduction {reduction:.3} (CAS {cas}, DAS {das}) outside \
         accepted band [0.85, 1.0] (paper: ~0.94)"
    );
}

/// §5.4 / Fig. 16 — the headline: MIDAS median gain over CAS in the 8-AP
/// large-scale simulation, under the calibrated physical contention model
/// (`PhysicalConfig::calibrated()`, promoted by the `fig16_calibration`
/// sweep).  The gain is read on the per-client capacity CDF — a client
/// far from its co-located array vs the same client near a distributed
/// antenna — which is the distribution the paper's >150 % claim describes.
///
/// Paper: "MIDAS outperforms CAS by more than 150 %" in median at 8 APs.
///
/// Accepted band: **[+50 %, +150 %]** (`FIG16_GAIN_BAND`) — the physical
/// model closes the gap from the graph model's +46 % to +84 % at the
/// bench seed (+51…+84 % across other seeds); the paper's full +150 %
/// would require testbed wall/trace structure this propagation model does
/// not reproduce.  The binary-graph reference below must meanwhile stay
/// bit-identical (see `runner_determinism.rs`), so this band is pinned on
/// the physical model only.
/// The aggregate *network* capacity gain of the same simulation is also
/// banded: **[0 %, +60 %]** — not the paper's headline axis, but the
/// physical model must move the aggregate in the right direction too
/// (graph model: +8 % at the bench seed; calibrated physical: +21 %).
/// MIDAS must not lose the aggregate comparison, and a runaway gain would
/// mean the CAS baseline collapsed.  Both bands are asserted from one
/// simulation run — the 8-AP physical sim is the suite's most expensive
/// call.
#[test]
fn fig16_physical_gains_are_in_band() {
    // Same (topologies, rounds, seed) as the fig16_eight_ap_simulation
    // bench target.
    let s = end_to_end_series(true, 15, 10, SEED, ContentionModel::physical_calibrated());

    let client_gain = relative_gain(
        Cdf::new(&s.per_client.das).median(),
        Cdf::new(&s.per_client.cas).median(),
    );
    let (lo, hi) = FIG16_GAIN_BAND;
    assert!(
        client_gain >= 0.5,
        "Fig. 16 acceptance: MIDAS median per-client gain {:.1} % under the calibrated \
         physical model must be at least +50 % (paper claims >150 %)",
        100.0 * client_gain
    );
    assert!(
        (lo..=hi).contains(&client_gain),
        "Fig. 16 median per-client gain {:.1} % outside accepted band [{:.0} %, {:.0} %]",
        100.0 * client_gain,
        100.0 * lo,
        100.0 * hi
    );

    let network_gain = relative_gain(
        Cdf::new(&s.network.das).median(),
        Cdf::new(&s.network.cas).median(),
    );
    assert!(
        (0.0..=0.6).contains(&network_gain),
        "Fig. 16 network capacity gain {:.1} % outside accepted band [0 %, 60 %]",
        100.0 * network_gain
    );
}

/// Fig. 16 under [`FadingEngine::Counter`] — the paper band is a property
/// of the *physics*, not of one draw sequence, so the counter-keyed engine
/// must land inside the same accepted bands as the legacy engine
/// (client gain **[+50 %, +150 %]**, network gain **[0 %, +60 %]**) at the
/// bench seed and scale.  The other fidelity headlines (Fig. 12,
/// §5.3.4) build their topologies and sensing fields without ever
/// invoking channel *evolution*, so they are engine-invariant by
/// construction and are not duplicated here.
#[test]
fn fig16_physical_gains_are_in_band_under_counter_engine() {
    let s = end_to_end_series_with_engine(
        true,
        15,
        10,
        SEED,
        ContentionModel::physical_calibrated(),
        FadingEngine::Counter,
    );

    let client_gain = relative_gain(
        Cdf::new(&s.per_client.das).median(),
        Cdf::new(&s.per_client.cas).median(),
    );
    let (lo, hi) = FIG16_GAIN_BAND;
    assert!(
        (lo..=hi).contains(&client_gain),
        "Fig. 16 (counter engine) median per-client gain {:.1} % outside accepted band \
         [{:.0} %, {:.0} %]",
        100.0 * client_gain,
        100.0 * lo,
        100.0 * hi
    );

    let network_gain = relative_gain(
        Cdf::new(&s.network.das).median(),
        Cdf::new(&s.network.cas).median(),
    );
    assert!(
        (0.0..=0.6).contains(&network_gain),
        "Fig. 16 (counter engine) network capacity gain {:.1} % outside accepted band \
         [0 %, 60 %]",
        100.0 * network_gain
    );
}

/// The promoted calibration is self-consistent: the pinned defaults keep
/// the stricter-than-preset structure the calibration mechanism relies on
/// (a CCA more sensitive than every environment preset, a smoother
/// sensing field, and a rate-adaptation margin of at least two MCS steps).
#[test]
fn calibrated_defaults_hold_their_structure() {
    let cal = PhysicalConfig::calibrated();
    assert!(
        cal.cs_threshold_dbm < -76.0,
        "stricter than every preset CCA"
    );
    assert!(
        cal.capture_margin_db >= 6.0,
        "at least two MCS steps of headroom"
    );
    let sigma = cal
        .sensing_sigma_db
        .expect("calibration pins the sensing field spread");
    assert!((0.0..=6.0).contains(&sigma));
}
