//! Session-API equivalence suite: the new `midas::sim` layer must be a
//! *refactoring*, not a physics change.
//!
//! Pins, at small scale (the golden-value pins at bench scale live in
//! `runner_determinism.rs` / `paper_fidelity.rs`):
//! * sessions are bit-identical at 1 vs 4 workers, on both the accumulated
//!   and the streamed path;
//! * streamed observers reproduce `TopologyResult` metrics exactly through
//!   the session layer;
//! * an explicit full-buffer traffic model is byte-identical to the
//!   default;
//! * every `ExperimentSpec` variant reproduces its legacy runner function
//!   byte for byte;
//! * non-saturation traffic models are deterministic in the seed.

use midas::experiment;
use midas::sim::{
    ContentionModel, DynamicsSpec, ExperimentSpec, MacKind, PairedRecipe, RunningSummary,
    SessionBuilder, SessionTrial, TrafficKind,
};
use midas_channel::EnvironmentKind;
use midas_net::scale::Scenario;

fn three_ap_session(threads: usize) -> midas::sim::Session {
    SessionBuilder::new(PairedRecipe::three_ap_paper())
        .rounds(4)
        .seed_mix(193, 61)
        .threads(threads)
        .build()
}

#[test]
fn session_series_are_bit_identical_at_1_and_4_workers() {
    let serial = three_ap_session(1).run(5, 0x5E55);
    let parallel = three_ap_session(4).run(5, 0x5E55);
    assert_eq!(serial.network.cas, parallel.network.cas);
    assert_eq!(serial.network.das, parallel.network.das);
    assert_eq!(serial.per_client.cas, parallel.per_client.cas);
    assert_eq!(serial.per_client.das, parallel.per_client.das);
}

#[test]
fn streamed_sessions_are_bit_identical_at_1_and_4_workers() {
    let collect = |threads: usize| {
        three_ap_session(threads)
            .stream(4, 0x0B5E, RunningSummary::new)
            .into_iter()
            .map(|(cas, das)| {
                (
                    cas.capacity_sum(),
                    das.capacity_sum(),
                    cas.per_client_capacity().to_vec(),
                    das.per_client_capacity().to_vec(),
                )
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(collect(1), collect(4));
}

#[test]
fn streamed_summaries_match_accumulated_results_through_the_session() {
    let session = three_ap_session(2);
    let accumulated = session.run_trials(3, 77, &|trial: &SessionTrial<'_>| {
        (trial.simulate(MacKind::Cas), trial.simulate(MacKind::Midas))
    });
    let streamed = session.stream(3, 77, RunningSummary::new);
    assert_eq!(accumulated.len(), streamed.len());
    for ((cas_full, das_full), (cas_sum, das_sum)) in accumulated.iter().zip(&streamed) {
        for (full, sum) in [(cas_full, cas_sum), (das_full, das_sum)] {
            assert_eq!(sum.rounds(), full.per_round_capacity.len());
            assert_eq!(
                sum.capacity_sum(),
                full.per_round_capacity.iter().sum::<f64>()
            );
            assert_eq!(sum.per_client_capacity(), &full.per_client_capacity[..]);
            assert_eq!(sum.per_ap_capacity(), &full.per_ap_capacity[..]);
            assert_eq!(sum.per_ap_duty_cycle(), full.per_ap_duty_cycle());
        }
    }
}

#[test]
fn explicit_full_buffer_session_is_byte_identical_to_the_default() {
    let default = three_ap_session(1).run(3, 9);
    let explicit = SessionBuilder::new(PairedRecipe::three_ap_paper())
        .rounds(4)
        .seed_mix(193, 61)
        .threads(1)
        .traffic(TrafficKind::FullBuffer)
        .build()
        .run(3, 9);
    assert_eq!(default.network.cas, explicit.network.cas);
    assert_eq!(default.network.das, explicit.network.das);
    assert_eq!(default.per_client.cas, explicit.per_client.cas);
    assert_eq!(default.per_client.das, explicit.per_client.das);
}

#[test]
fn non_saturation_traffic_is_deterministic_and_lighter() {
    let build = || {
        SessionBuilder::new(PairedRecipe::three_ap_paper())
            .rounds(6)
            .traffic(TrafficKind::Poisson {
                mean_arrivals_per_round: 0.5,
            })
            .build()
    };
    let a = build().run(3, 4);
    let b = build().run(3, 4);
    assert_eq!(a.network.das, b.network.das);
    assert_eq!(a.per_client.das, b.per_client.das);
    // Queue-driven traffic at 0.5 packets/client/round serves less volume
    // than saturation.
    let saturated = SessionBuilder::new(PairedRecipe::three_ap_paper())
        .rounds(6)
        .build()
        .run(3, 4);
    let sum = |v: &[f64]| v.iter().sum::<f64>();
    assert!(sum(&a.network.das) <= sum(&saturated.network.das));
}

#[test]
fn dynamic_sessions_are_bit_identical_at_1_and_4_workers() {
    // Mobility + roaming draw from a dedicated per-trial RNG stream, so
    // fanning trials across workers must not perturb a single byte.
    let build = |threads: usize| {
        SessionBuilder::new(PairedRecipe::three_ap_paper())
            .rounds(6)
            .threads(threads)
            .traffic(TrafficKind::OnOff {
                duty: 0.6,
                mean_burst_rounds: 4.0,
            })
            .dynamics(DynamicsSpec::roaming_walk(1.4))
            .build()
    };
    let serial = build(1).run(4, 0xD1A);
    let parallel = build(4).run(4, 0xD1A);
    assert_eq!(serial.network.cas, parallel.network.cas);
    assert_eq!(serial.network.das, parallel.network.das);
    assert_eq!(serial.per_client.cas, parallel.per_client.cas);
    assert_eq!(serial.per_client.das, parallel.per_client.das);
}

#[test]
fn an_inactive_dynamics_spec_is_byte_identical_to_no_dynamics() {
    // `DynamicsSpec::default()` configures nothing; the builder must treat
    // it exactly like never calling `.dynamics(...)`, keeping every static
    // golden byte for byte.
    let base = three_ap_session(1).run(3, 77);
    let inactive = SessionBuilder::new(PairedRecipe::three_ap_paper())
        .rounds(4)
        .seed_mix(193, 61)
        .threads(1)
        .dynamics(DynamicsSpec::default())
        .build()
        .run(3, 77);
    assert_eq!(base.network.cas, inactive.network.cas);
    assert_eq!(base.network.das, inactive.network.das);
    assert_eq!(base.per_client.cas, inactive.per_client.cas);
    assert_eq!(base.per_client.das, inactive.per_client.das);
}

#[test]
fn experiment_specs_reproduce_the_legacy_runners_byte_for_byte() {
    // One spec per legacy runner family, at quick scales.
    let paired = |out: midas::sim::ExperimentOutput| out.expect_paired();

    let s = paired(ExperimentSpec::NaiveScalingDrop { topologies: 4 }.run(1));
    let l = experiment::fig03_naive_scaling_drop(4, 1);
    assert_eq!((s.cas, s.das), (l.cas, l.das));

    let s = paired(ExperimentSpec::LinkSnr { topologies: 3 }.run(2));
    let l = experiment::fig07_link_snr(3, 2);
    assert_eq!((s.cas, s.das), (l.cas, l.das));

    let s = paired(
        ExperimentSpec::MuMimoCapacity {
            environment: EnvironmentKind::OfficeA,
            antennas: 4,
            topologies: 3,
        }
        .run(3),
    );
    let l = experiment::fig08_09_capacity(EnvironmentKind::OfficeA, 4, 3, 3);
    assert_eq!((s.cas, s.das), (l.cas, l.das));

    let s = ExperimentSpec::SmartPrecoding { topologies: 3 }
        .run(4)
        .expect_smart_precoding();
    let l = experiment::fig10_smart_precoding(3, 4);
    assert_eq!(s.cas_naive, l.cas_naive);
    assert_eq!(s.das_smart, l.das_smart);

    let s = ExperimentSpec::SimultaneousTx { topologies: 5 }
        .run(6)
        .expect_ratios();
    assert_eq!(s, experiment::fig12_simultaneous_tx(5, 6));

    let s = ExperimentSpec::Deadzones { deployments: 2 }
        .run(8)
        .expect_deadzones();
    assert_eq!(s, experiment::fig13_deadzones(2, 8));

    let s = ExperimentSpec::HiddenTerminals { deployments: 2 }
        .run(12)
        .expect_hidden_terminals();
    assert_eq!(s, experiment::sec534_hidden_terminals(2, 12));

    let s = paired(ExperimentSpec::PacketTagging { topologies: 4 }.run(7));
    let l = experiment::fig14_packet_tagging(4, 7);
    assert_eq!((s.cas, s.das), (l.cas, l.das));

    let spec_e2e = ExperimentSpec::EndToEnd {
        eight_aps: false,
        topologies: 2,
        rounds: 3,
        contention: ContentionModel::Graph,
    }
    .run(100)
    .expect_end_to_end();
    let legacy_e2e = experiment::end_to_end_series(false, 2, 3, 100, ContentionModel::Graph);
    assert_eq!(spec_e2e.network.cas, legacy_e2e.network.cas);
    assert_eq!(spec_e2e.per_client.das, legacy_e2e.per_client.das);

    let s = ExperimentSpec::EnterpriseScaling {
        scenario: Scenario::enterprise_office(8),
        topologies: 1,
        rounds: 2,
    }
    .run(42)
    .expect_enterprise();
    let l = experiment::enterprise_scaling(&Scenario::enterprise_office(8), 1, 2, 42);
    assert_eq!(s.cas, l.cas);
    assert_eq!(s.das, l.das);
    assert_eq!(s.das_per_ap_duty, l.das_per_ap_duty);

    let s = ExperimentSpec::TagWidth {
        widths: vec![1, 2],
        topologies: 1,
    }
    .run(9)
    .expect_tag_width();
    assert_eq!(s, experiment::ablation_tag_width(&[1, 2], 1, 9));

    let s = ExperimentSpec::AntennaWait {
        windows_us: vec![0, 34],
        trials: 50,
    }
    .run(11)
    .expect_antenna_wait();
    assert_eq!(s, experiment::ablation_antenna_wait(&[0, 34], 50, 11));
}

#[test]
fn custom_topology_sources_drive_sessions() {
    // The extension point the API redesign exists for: a user-defined
    // source (here: a fixed three-AP layout regardless of seed) composes
    // with the whole session machinery.
    struct FrozenFloor;
    impl midas::sim::TopologySource for FrozenFloor {
        fn environment(&self) -> midas_channel::Environment {
            midas_channel::Environment::office_a()
        }
        fn build(&self, _seed: u64) -> midas_net::deployment::PairedTopology {
            PairedRecipe::three_ap_paper().build(1234)
        }
    }
    let series = SessionBuilder::new(FrozenFloor).rounds(3).build().run(2, 5);
    assert_eq!(series.network.cas.len(), 2);
    // Same floor, different sim seeds: capacities differ across trials but
    // both are positive.
    assert!(series.network.das.iter().all(|&c| c > 0.0));
}
