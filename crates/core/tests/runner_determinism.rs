//! Golden-median regression tests for the `SeedSweep`-based experiment
//! runners: series are unchanged vs pinned values — the exact medians the
//! serial, hand-rolled loops produced before the engine refactor (for the
//! two historically RNG-sharing runners, the values pinned are the
//! per-trial-RNG ones introduced with the engine).
//!
//! Thread-count invariance via `MIDAS_THREADS` lives in its own test binary
//! (`midas_threads_env.rs`): mutating the environment from a test that runs
//! in parallel with siblings reading it would be a libc-level data race.

use midas::experiment::*;
use midas_channel::EnvironmentKind;
use midas_net::capture::ContentionModel;
use midas_net::metrics::Cdf;

fn median(samples: &[f64]) -> f64 {
    Cdf::new(samples).median()
}

// Golden medians at the seeds the unit tests use.  Originally captured from
// the serial pre-engine runners (and, for the per-trial-RNG runners, at the
// engine's introduction); the precoder-dependent values were re-pinned when
// `zfbf_directions` switched from the SVD pseudoinverse to the QR route
// (same pseudoinverse to ~1e-10, different last-ulp rounding) — the
// topology/contention-only runners (figs. 7, 12, 13, §5.3.4) kept their
// original values, pinning that the spatial-index scan rewrite is exact.
// Exact equality: the engine guarantees bit-identical series.

#[test]
fn fig03_golden_medians() {
    let s = fig03_naive_scaling_drop(15, 1);
    assert_eq!(median(&s.cas), 2.2461738755511247);
    assert_eq!(median(&s.das), 4.743334572147058);
}

#[test]
fn fig07_golden_medians() {
    let s = fig07_link_snr(15, 2);
    assert_eq!(median(&s.cas), 12.800544789561846);
    assert_eq!(median(&s.das), 22.6635266629569);
}

#[test]
fn fig08_09_golden_medians() {
    let s = fig08_09_capacity(EnvironmentKind::OfficeA, 4, 12, 3);
    assert_eq!(median(&s.cas), 16.821446945959018);
    assert_eq!(median(&s.das), 24.414304691170656);
}

#[test]
fn fig10_golden_medians() {
    let s = fig10_smart_precoding(15, 4);
    assert_eq!(median(&s.cas_naive), 10.659644196843498);
    assert_eq!(median(&s.cas_smart), 10.869870637224388);
    assert_eq!(median(&s.das_naive), 28.714182421525102);
    assert_eq!(median(&s.das_smart), 29.4048457010893);
}

#[test]
fn fig11_golden_medians() {
    let fresh = fig11_optimal_comparison(8, false, 5);
    assert_eq!(median(&fresh.cas), 20.278352869423458);
    assert_eq!(median(&fresh.das), 20.278352869423458);
    let stale = fig11_optimal_comparison(4, true, 5);
    assert_eq!(median(&stale.cas), 2.7494075273295033);
    assert_eq!(median(&stale.das), 17.576011050142867);
}

#[test]
fn fig12_golden_median() {
    assert_eq!(median(&fig12_simultaneous_tx(20, 6)), 1.25);
}

#[test]
fn fig13_golden_median() {
    let dead: Vec<f64> = fig13_deadzones(6, 8)
        .iter()
        .map(|d| d.das_dead as f64)
        .collect();
    assert_eq!(median(&dead), 85.5);
}

#[test]
fn sec534_golden_median() {
    let spots: Vec<f64> = sec534_hidden_terminals(6, 12)
        .iter()
        .map(|h| h.cas_spots as f64)
        .collect();
    assert_eq!(median(&spots), 467.5);
}

#[test]
fn fig14_golden_medians() {
    let s = fig14_packet_tagging(25, 7);
    assert_eq!(median(&s.cas), 11.207076621945118);
    assert_eq!(median(&s.das), 12.2485520098635);
}

#[test]
fn end_to_end_golden_medians() {
    // Same golden values the pre-session `end_to_end_capacity` runner
    // pinned: the session path must reproduce them bit for bit.
    let s = end_to_end_series(false, 6, 10, 100, ContentionModel::Graph).network;
    assert_eq!(median(&s.cas), 20.464142689729186);
    assert_eq!(median(&s.das), 20.826458303352467);
}

#[test]
fn ablation_golden_values() {
    assert_eq!(
        ablation_tag_width(&[1, 2], 1, 9),
        vec![(1, 18.570308758760063), (2, 15.666126804721625)]
    );
    assert_eq!(
        ablation_das_radius(&[(0.2, 0.4), (0.5, 0.75)], 4, 10),
        vec![
            ((0.2, 0.4), 28.81614118545318),
            ((0.5, 0.75), 24.77614935936384)
        ]
    );
    assert_eq!(
        ablation_antenna_wait(&[0, 34], 200, 11),
        vec![(0, 0.0), (34, 0.615)]
    );
}
