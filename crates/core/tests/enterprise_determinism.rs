//! Determinism of the enterprise-scale scenarios through the `SeedSweep`
//! engine: every scenario family must produce bit-identical series at any
//! worker count (thread override via `SeedSweep::with_threads`, so no
//! environment mutation — see `midas_threads_env.rs` for the env-var path).

use midas::runner::SeedSweep;
use midas_net::scale::Scenario;
use midas_net::simulator::{MacKind, NetworkSimulator};

/// One enterprise trial: build the paired floor at the mixed seed, simulate
/// both variants, return every capacity series the bench would emit.
fn enterprise_trial(scenario: &Scenario, rounds: usize, seed: u64) -> Vec<f64> {
    let pair = scenario.build(seed).expect("scenario builds");
    let cas =
        NetworkSimulator::new(pair.cas, scenario.sim_config(MacKind::Cas, rounds, seed)).run();
    let das =
        NetworkSimulator::new(pair.das, scenario.sim_config(MacKind::Midas, rounds, seed)).run();
    let mut out = vec![
        cas.mean_capacity(),
        das.mean_capacity(),
        cas.mean_streams(),
        das.mean_streams(),
    ];
    out.extend(das.per_ap_mean_capacity());
    out.extend(das.per_ap_duty_cycle());
    out
}

#[test]
fn every_scenario_is_bit_identical_at_1_and_4_threads() {
    for scenario in Scenario::all(8) {
        let run = |workers: usize| {
            SeedSweep::new(0x5CA1E)
                .with_mix(1021, 101)
                .with_threads(workers)
                .run(4, &|_t: usize, s: u64| enterprise_trial(&scenario, 3, s))
        };
        let serial = run(1);
        let parallel = run(4);
        assert_eq!(
            serial,
            parallel,
            "{}: series differ between 1 and 4 workers",
            scenario.name()
        );
        // And the series is non-trivial: finite, positive capacities.
        assert!(serial.iter().flatten().all(|v| v.is_finite() && *v >= 0.0));
        assert!(serial.iter().all(|trial| trial[1] > 0.0));
    }
}

#[test]
fn enterprise_scaling_runner_is_thread_invariant_end_to_end() {
    // The public runner fans through the engine internally; two consecutive
    // invocations (whatever the ambient worker count) must agree with each
    // other and with the raw per-trial closure above.
    let scenario = Scenario::dense_apartment(8);
    let a = midas::experiment::enterprise_scaling(&scenario, 3, 3, 7);
    let b = midas::experiment::enterprise_scaling(&scenario, 3, 3, 7);
    assert_eq!(a.cas, b.cas);
    assert_eq!(a.das, b.das);
    assert_eq!(a.das_per_ap_capacity, b.das_per_ap_capacity);
    let sweep = SeedSweep::new(7).with_mix(1021, 101).with_threads(2);
    let raw = sweep.run(3, &|_t: usize, s: u64| enterprise_trial(&scenario, 3, s));
    for (t, trial) in raw.iter().enumerate() {
        assert_eq!(a.cas[t], trial[0], "trial {t} CAS capacity");
        assert_eq!(a.das[t], trial[1], "trial {t} MIDAS capacity");
    }
}
