//! Public-API surface snapshot for `midas::sim`.
//!
//! The session API is the crate's public contract: benches, examples and
//! downstream users compose against it.  This test extracts every `pub`
//! item declared in the `sim` module sources and compares the listing
//! against the pinned snapshot below, so an accidental rename, removal or
//! signature-class change (fn → method moves, new exports) fails CI with a
//! readable diff instead of silently breaking downstream callers.
//!
//! To re-pin after a *deliberate* API change: run the test, copy the
//! "actual surface" listing from the failure message into `PINNED`.

/// The sim module sources, bundled at compile time so the test needs no
/// filesystem assumptions.
const SOURCES: &[(&str, &str)] = &[
    ("sim/mod.rs", include_str!("../src/sim/mod.rs")),
    ("sim/session.rs", include_str!("../src/sim/session.rs")),
    ("sim/source.rs", include_str!("../src/sim/source.rs")),
    ("sim/spec.rs", include_str!("../src/sim/spec.rs")),
];

/// The pinned `midas::sim` surface: one `file: kind name` row per public
/// item, in declaration order.
const PINNED: &[&str] = &[
    "sim/mod.rs: use session::{PairedSamples, Session, SessionBuilder, SessionSeries, SessionTrial}",
    "sim/mod.rs: use source::{PairedRecipe, TopologySource}",
    "sim/mod.rs: use spec::{ExperimentOutput, ExperimentSpec, LoadGainRow, SpecParseError}",
    "sim/mod.rs: use midas_channel::FadingEngine",
    "sim/mod.rs: use midas_net::capture::{ContentionModel, PhysicalConfig}",
    "sim/mod.rs: use midas_net::dynamics::{DynamicsSpec, MobilityModel, ReassociationSpec}",
    "sim/mod.rs: use midas_net::observer::{Accumulate, Observer, RoundRecord, RunningSummary, Tee}",
    "sim/mod.rs: use midas_net::simulator::{MacKind, ScanMode, StageTimings}",
    "sim/mod.rs: use midas_net::traffic::{Churn, Diurnal, FlashCrowd}",
    "sim/mod.rs: use midas_net::traffic::{FullBuffer, OnOff, Poisson, TrafficKind, TrafficModel}",
    "sim/session.rs: struct PairedSamples",
    "sim/session.rs: fn from_pairs",
    "sim/session.rs: fn from_groups",
    "sim/session.rs: struct SessionSeries",
    "sim/session.rs: struct SessionBuilder",
    "sim/session.rs: fn new",
    "sim/session.rs: fn contention",
    "sim/session.rs: fn traffic",
    "sim/session.rs: fn rounds",
    "sim/session.rs: fn tag_width",
    "sim/session.rs: fn coherence_interval_rounds",
    "sim/session.rs: fn fading_engine",
    "sim/session.rs: fn evolve_threads",
    "sim/session.rs: fn stage_profiling",
    "sim/session.rs: fn dynamics",
    "sim/session.rs: fn seed_mix",
    "sim/session.rs: fn threads",
    "sim/session.rs: fn build",
    "sim/session.rs: struct Session",
    "sim/session.rs: fn source",
    "sim/session.rs: fn sweep",
    "sim/session.rs: fn trial",
    "sim/session.rs: fn run",
    "sim/session.rs: fn run_trials",
    "sim/session.rs: fn stream",
    "sim/session.rs: struct SessionTrial",
    "sim/session.rs: fn index",
    "sim/session.rs: fn seed",
    "sim/session.rs: fn pair",
    "sim/session.rs: fn config",
    "sim/session.rs: fn simulator",
    "sim/session.rs: fn simulate",
    "sim/session.rs: fn observe",
    "sim/source.rs: trait TopologySource",
    "sim/source.rs: struct PairedRecipe",
    "sim/source.rs: fn single_ap",
    "sim/source.rs: fn three_ap",
    "sim/source.rs: fn three_ap_paper",
    "sim/source.rs: fn eight_ap",
    "sim/source.rs: fn eight_ap_paper",
    "sim/source.rs: fn config",
    "sim/spec.rs: enum ExperimentSpec",
    "sim/spec.rs: fn fig03",
    "sim/spec.rs: fn fig07",
    "sim/spec.rs: fn fig08_09",
    "sim/spec.rs: fn fig10",
    "sim/spec.rs: fn fig11",
    "sim/spec.rs: fn fig12",
    "sim/spec.rs: fn fig13",
    "sim/spec.rs: fn sec534",
    "sim/spec.rs: fn fig14",
    "sim/spec.rs: fn fig15",
    "sim/spec.rs: fn fig16",
    "sim/spec.rs: fn name",
    "sim/spec.rs: fn run",
    "sim/spec.rs: struct LoadGainRow",
    "sim/spec.rs: enum ExperimentOutput",
    "sim/spec.rs: fn expect_paired",
    "sim/spec.rs: fn expect_smart_precoding",
    "sim/spec.rs: fn expect_ratios",
    "sim/spec.rs: fn expect_deadzones",
    "sim/spec.rs: fn expect_hidden_terminals",
    "sim/spec.rs: fn expect_end_to_end",
    "sim/spec.rs: fn expect_calibration",
    "sim/spec.rs: fn expect_enterprise",
    "sim/spec.rs: fn expect_load_vs_gain",
    "sim/spec.rs: fn expect_tag_width",
    "sim/spec.rs: fn expect_das_radius",
    "sim/spec.rs: fn expect_antenna_wait",
    "sim/spec.rs: struct SpecParseError",
];

/// Extracts `kind name` for every `pub` declaration in a source file, in
/// order.  Test modules (`#[cfg(test)] mod tests`) are skipped by virtue of
/// containing no `pub` items.
fn public_items(source: &str) -> Vec<String> {
    let mut out = Vec::new();
    for raw in source.lines() {
        let line = raw.trim_start();
        let Some(rest) = line.strip_prefix("pub ") else {
            continue;
        };
        let (kind, after) = match [
            "fn", "struct", "enum", "trait", "mod", "const", "type", "use",
        ]
        .iter()
        .find_map(|k| rest.strip_prefix(&format!("{k} ")).map(|a| (*k, a)))
        {
            Some(found) => found,
            None => continue,
        };
        let name: String = if kind == "use" {
            // Re-exports: keep the whole path (trailing semicolon dropped)
            // so added/removed names inside a brace list show up too.
            after.trim_end().trim_end_matches(';').to_string()
        } else {
            after
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect()
        };
        if name.is_empty() {
            continue;
        }
        out.push(format!("{kind} {name}"));
    }
    out
}

#[test]
fn sim_api_surface_matches_the_pinned_snapshot() {
    let actual: Vec<String> = SOURCES
        .iter()
        .flat_map(|(file, source)| {
            public_items(source)
                .into_iter()
                .map(move |item| format!("{file}: {item}"))
        })
        .collect();
    let pinned: Vec<String> = PINNED.iter().map(|s| s.to_string()).collect();
    assert_eq!(
        actual,
        pinned,
        "\nmidas::sim public surface changed.  If deliberate, re-pin the snapshot in \
         crates/core/tests/api_surface.rs.\n\nactual surface:\n{}\n",
        actual
            .iter()
            .map(|l| format!("    {l:?},"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn extractor_sees_every_declaration_kind() {
    let sample = r#"
pub struct Foo;
impl Foo {
    pub fn bar(&self) {}
    fn private(&self) {}
}
pub trait Baz {
    fn method(&self);
}
pub use other::{A, B};
pub const X: usize = 1;
mod tests {
    fn hidden() {}
}
"#;
    assert_eq!(
        public_items(sample),
        vec![
            "struct Foo",
            "fn bar",
            "trait Baz",
            "use other::{A, B}",
            "const X",
        ]
    );
}
