//! Thread-count invariance through the public `MIDAS_THREADS` interface.
//!
//! This binary holds exactly one test on purpose: `std::env::set_var` while
//! another thread calls `getenv` is a libc-level data race, so the override
//! must never run concurrently with sibling tests that read the variable
//! (every `SeedSweep::run` does).  With a single `#[test]`, all mutation and
//! all reads happen on one thread.

use midas::experiment::{end_to_end_series, fig07_link_snr, fig08_09_capacity};
use midas::runner::THREADS_ENV;
use midas_channel::EnvironmentKind;
use midas_net::capture::ContentionModel;

fn end_to_end_network(topologies: usize, rounds: usize, seed: u64) -> midas::sim::PairedSamples {
    end_to_end_series(false, topologies, rounds, seed, ContentionModel::Graph).network
}

#[test]
fn runner_series_are_identical_at_any_midas_threads_setting() {
    // Representative single-sample-per-trial runner at 1 vs 4 workers.
    let run = || fig08_09_capacity(EnvironmentKind::OfficeA, 4, 20, 1234);
    std::env::set_var(THREADS_ENV, "1");
    let serial = run();
    std::env::set_var(THREADS_ENV, "4");
    let parallel = run();
    assert_eq!(serial.cas, parallel.cas);
    assert_eq!(serial.das, parallel.das);

    // Multi-sample-per-trial and multi-AP runners at an odd worker count vs
    // the machine default.
    std::env::set_var(THREADS_ENV, "3");
    let snr = fig07_link_snr(10, 77);
    let e2e = end_to_end_network(4, 5, 77);
    std::env::remove_var(THREADS_ENV);
    assert_eq!(snr.cas, fig07_link_snr(10, 77).cas);
    assert_eq!(snr.das, fig07_link_snr(10, 77).das);
    assert_eq!(e2e.cas, end_to_end_network(4, 5, 77).cas);
    assert_eq!(e2e.das, end_to_end_network(4, 5, 77).das);
}
