//! Enterprise-scale deployment demo: a 64-AP / 512-client floor through the
//! `midas_net::scale` subsystem.
//!
//! ```sh
//! cargo run --release --example enterprise_grid            # all scenarios, 64 APs
//! MIDAS_ENTERPRISE_AP_COUNTS=16 cargo run --release --example enterprise_grid
//! ```

use midas::sim::{MacKind, SessionBuilder};
use midas_net::metrics::Cdf;
use midas_net::scale::Scenario;

fn main() {
    let aps: usize = std::env::var("MIDAS_ENTERPRISE_AP_COUNTS")
        .ok()
        .and_then(|v| v.split(',').next().and_then(|n| n.trim().parse().ok()))
        .unwrap_or(64);
    let rounds = 10;
    let seed = 0x11DA5;

    for scenario in Scenario::all(aps) {
        let env = scenario.environment();
        println!(
            "== {} — {} APs ({}x{} grid, {:.0} m spacing), {} clients, interaction range {:.1} m",
            scenario.name(),
            scenario.num_aps(),
            scenario.grid.cols,
            scenario.grid.rows,
            scenario.grid.ap_spacing_m,
            scenario.num_clients(),
            env.interaction_range_m(midas_net::scale::scenario::INTERACTION_MARGIN_DB),
        );
        let start = std::time::Instant::now(); // lint: allow(wall-clock) — example prints its own wall time; output is narrative, not a figure
                                               // One session trial = one paired floor realisation; the session
                                               // carries the scenario's finite-interaction-range simulator config.
        let session = SessionBuilder::new(scenario).rounds(rounds).build();
        let trial = session.trial(0, seed);
        let cas = trial.simulate(MacKind::Cas);
        let das = trial.simulate(MacKind::Midas);
        let duty = Cdf::new(&das.per_ap_duty_cycle());
        println!(
            "   CAS   {:7.1} bit/s/Hz over {:5.1} streams/round",
            cas.mean_capacity(),
            cas.mean_streams()
        );
        println!(
            "   MIDAS {:7.1} bit/s/Hz over {:5.1} streams/round  \
             (per-AP duty cycle min {:.2} / median {:.2} / max {:.2})",
            das.mean_capacity(),
            das.mean_streams(),
            duty.quantile(0.0),
            duty.median(),
            duty.quantile(1.0),
        );
        println!(
            "   build + 2x {rounds}-round simulation: {:?}",
            start.elapsed()
        );
    }
}
