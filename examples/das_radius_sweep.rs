//! DAS placement-radius sweep: how far from the AP should the distributed
//! antennas sit?
//!
//! The paper places DAS antennas in an annulus around the AP (§4); this
//! example sweeps the annulus bounds (as fractions of the environment's
//! coverage range) together with the client spread, and reports the 3-AP
//! network capacity and concurrent-stream count of MIDAS against the CAS
//! baseline for each setting. Wider annuli push antennas closer to the
//! clients (higher SNR) but shrink the overlap that spatial reuse exploits.
//!
//! Run with `cargo run --release --example das_radius_sweep`.

use midas::sim::{MacKind, PairedRecipe, SessionBuilder, SessionTrial};
use midas_channel::topology::TopologyConfig;
use midas_channel::Environment;

const TOPOLOGIES_PER_SETTING: usize = 6;

/// Runs one sweep point: DAS annulus `[das_lo, das_hi]` and maximum
/// client-AP distance `client_max`, all as fractions of the coverage range.
fn run(label: &str, das_lo: f64, das_hi: f64, client_max: f64) {
    let env = Environment::office_a();
    let range = env.coverage_range_m();
    let cfg = TopologyConfig {
        das_radius_min_m: das_lo * range,
        das_radius_max_m: das_hi * range,
        min_sector_deg: 60.0,
        max_client_ap_m: client_max * range,
        ..TopologyConfig::das(4, 4)
    };
    // A custom three-AP recipe per sweep point, driven through one session.
    let session = SessionBuilder::new(PairedRecipe::three_ap(env, cfg))
        .rounds(10)
        .build();
    let rows = session.run_trials(TOPOLOGIES_PER_SETTING, 100, &|trial: &SessionTrial<'_>| {
        let das_run = trial.simulate(MacKind::Midas);
        let cas_run = trial.simulate(MacKind::Cas);
        (
            das_run.mean_capacity(),
            cas_run.mean_capacity(),
            das_run.mean_streams(),
            cas_run.mean_streams(),
        )
    });
    let (mut das_cap, mut cas_cap, mut das_streams, mut cas_streams) = (0.0, 0.0, 0.0, 0.0);
    for (dc, cc, ds, cs) in rows {
        das_cap += dc;
        cas_cap += cc;
        das_streams += ds;
        cas_streams += cs;
    }
    let n = TOPOLOGIES_PER_SETTING as f64;
    println!(
        "{label}: MIDAS cap {:.1} (streams {:.1})  CAS cap {:.1} (streams {:.1})  gain {:.0}%",
        das_cap / n,
        das_streams / n,
        cas_cap / n,
        cas_streams / n,
        (das_cap / cas_cap - 1.0) * 100.0
    );
}

fn main() {
    println!("3-AP network capacity vs DAS annulus (fractions of coverage range):");
    run("das 0.50-0.75 clients 0.85", 0.5, 0.75, 0.85);
    run("das 0.50-0.75 clients 0.50", 0.5, 0.75, 0.50);
    run("das 0.40-0.60 clients 0.50", 0.4, 0.6, 0.50);
    run("das 0.30-0.50 clients 0.45", 0.3, 0.5, 0.45);
    run("das 0.40-0.60 clients 0.40", 0.4, 0.6, 0.40);
}
