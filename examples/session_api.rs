//! Session-API tour: composing topology sources, traffic models and
//! streaming observers into one experiment — the `midas::sim` replacement
//! for the per-figure free functions.
//!
//! Three stops:
//! 1. a paper experiment driven as an [`ExperimentSpec`] value,
//! 2. a custom session (8-AP floor, duty-cycled traffic) built with
//!    [`SessionBuilder`],
//! 3. a **custom observer** streaming a long-horizon run with fixed-size
//!    state (peak memory flat in the round count).
//!
//! Run with `cargo run --release --example session_api`.
//!
//! No Rust required: every stop here is also reachable from the command
//! line — the `midas` binary (`crates/svc`) runs the same
//! [`ExperimentSpec`]s from JSON files with a result cache and a streamed
//! round log: `cargo run --release -p midas-svc --bin midas -- run
//! specs/fig16_8ap.json` (see the README's "Capacity-planning service"
//! section and the example specs under `specs/`).

use midas::prelude::*;
use midas::sim::{
    ContentionModel, MacKind, Observer, PairedRecipe, RoundRecord, SessionBuilder, TrafficKind,
};

/// A custom streaming observer: tracks only the busiest round seen so far
/// and a capacity total — O(1) state no matter how many rounds stream by.
#[derive(Default)]
struct PeakRound {
    rounds: usize,
    capacity_sum: f64,
    peak_capacity: f64,
    peak_round: usize,
}

impl Observer for PeakRound {
    fn on_round(&mut self, record: &RoundRecord<'_>) {
        self.rounds += 1;
        let capacity = record.total_capacity();
        self.capacity_sum += capacity;
        if capacity > self.peak_capacity {
            self.peak_capacity = capacity;
            self.peak_round = record.round;
        }
    }
}

fn main() {
    // 1. Paper figures are spec values now: Fig. 15 at a small scale.
    let fig15 = ExperimentSpec::EndToEnd {
        eight_aps: false,
        topologies: 6,
        rounds: 10,
        contention: ContentionModel::Graph,
    }
    .run(42)
    .expect_end_to_end();
    println!(
        "fig15 @ 6 topologies: CAS median {:.1} bit/s/Hz, MIDAS median {:.1} bit/s/Hz",
        Cdf::new(&fig15.network.cas).median(),
        Cdf::new(&fig15.network.das).median(),
    );

    // 2. A custom session: the paper's 8-AP floor, but under the calibrated
    //    physical contention model and 40 %-duty bursty traffic — a
    //    scenario no legacy free function exposed.
    let session = SessionBuilder::new(PairedRecipe::eight_ap_paper())
        .contention(ContentionModel::physical_calibrated())
        .traffic(TrafficKind::OnOff {
            duty: 0.4,
            mean_burst_rounds: 5.0,
        })
        .rounds(12)
        .build();
    let series = session.run(4, 7);
    println!(
        "8-AP physical model @ 40% duty: CAS median {:.1}, MIDAS median {:.1} bit/s/Hz",
        Cdf::new(&series.network.cas).median(),
        Cdf::new(&series.network.das).median(),
    );

    // 3. Stream a long-horizon run through the custom observer: 500 rounds,
    //    O(1) observer state.
    let long = SessionBuilder::new(PairedRecipe::three_ap_paper())
        .rounds(500)
        .build();
    let trial = long.trial(0, 99);
    let mut peak = PeakRound::default();
    trial.observe(MacKind::Midas, &mut peak);
    println!(
        "500-round MIDAS stream: mean {:.1} bit/s/Hz, busiest round #{} at {:.1} bit/s/Hz",
        peak.capacity_sum / peak.rounds as f64,
        peak.peak_round,
        peak.peak_capacity,
    );
}
