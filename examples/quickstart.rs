//! Quick start: compare one MIDAS (DAS) AP with a conventional CAS 802.11ac AP
//! on a random office topology.
//!
//! Run with `cargo run --release --example quickstart`.

use midas::prelude::*;

fn main() {
    let config = SystemConfig::default();
    println!(
        "MIDAS quick start: {} antennas, {} clients, {:?}",
        config.antennas, config.clients, config.environment
    );

    let mut gains = Vec::new();
    for seed in 0..20 {
        let system = SingleApSystem::generate(&config, seed);
        let outcome = system.downlink_comparison();
        println!(
            "topology {seed:2}: CAS {:6.2} bit/s/Hz   MIDAS {:6.2} bit/s/Hz   gain {:+.0}%",
            outcome.cas_capacity,
            outcome.midas_capacity,
            outcome.gain() * 100.0
        );
        gains.push(outcome.gain() * 100.0);
    }
    let cdf = Cdf::new(&gains);
    println!("median MIDAS gain over CAS: {:+.0}%", cdf.median());
}
