//! Precoding deep dive: all four precoders on the same DAS channel, showing
//! per-antenna power usage and the resulting capacity (the §3.1 story).
//!
//! Run with `cargo run --release --example precoding_comparison`.

use midas::prelude::*;
use midas_phy::power;
use midas_phy::precoder::make_precoder;

fn main() {
    let system = SingleApSystem::generate(&SystemConfig::default(), 42);
    let ch = system.das_channel();
    println!(
        "per-antenna budget: {:.1} mW, noise: {:.2e} mW\n",
        ch.tx_power_mw, ch.noise_mw
    );
    for kind in [
        PrecoderKind::Zfbf,
        PrecoderKind::NaiveScaled,
        PrecoderKind::PowerBalanced,
        PrecoderKind::Optimal,
    ] {
        let out = make_precoder(kind).precode_channel(ch);
        let powers = power::per_antenna_powers(&out.v);
        let util = power::power_utilisation(&out.v, ch.tx_power_mw);
        println!("{kind:>15}: capacity {:6.2} bit/s/Hz | per-antenna mW {:?} | utilisation {:.0}% | constraint ok: {}",
            out.sum_capacity,
            powers.iter().map(|p| (p * 10.0).round() / 10.0).collect::<Vec<_>>(),
            util * 100.0,
            power::satisfies_per_antenna(&out.v, ch.tx_power_mw));
    }
}
