//! Multi-AP spatial reuse: the enterprise-floor workload of §5.3-5.4 — three
//! APs sharing a contention domain, with per-antenna carrier sensing letting
//! MIDAS pack more concurrent streams than the CAS baseline.
//!
//! Run with `cargo run --release --example multi_ap_spatial_reuse`.

use midas::prelude::*;

fn main() {
    let ratios = ExperimentSpec::SimultaneousTx { topologies: 30 }
        .run(3)
        .expect_ratios();
    let cdf = Cdf::new(&ratios);
    println!("simultaneous transmissions, MIDAS/CAS ratio over 30 topologies:");
    println!(
        "  median {:.2}, p10 {:.2}, p90 {:.2}",
        cdf.median(),
        cdf.quantile(0.1),
        cdf.quantile(0.9)
    );

    let e2e = ExperimentSpec::EndToEnd {
        eight_aps: false,
        topologies: 10,
        rounds: 10,
        contention: midas::sim::ContentionModel::Graph,
    }
    .run(3)
    .expect_end_to_end()
    .network;
    let cas = Cdf::new(&e2e.cas);
    let das = Cdf::new(&e2e.das);
    println!("end-to-end 3-AP network capacity:");
    println!("  CAS   median {:.1} bit/s/Hz", cas.median());
    println!(
        "  MIDAS median {:.1} bit/s/Hz ({:+.0}%)",
        das.median(),
        (das.median() / cas.median() - 1.0) * 100.0
    );
}
