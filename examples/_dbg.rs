use midas_channel::{Environment, SimRng};
use midas_channel::topology::TopologyConfig;
use midas_net::deployment::PairedTopology;
use midas_net::simulator::{NetworkSimConfig, NetworkSimulator};

fn run(label: &str, das_lo: f64, das_hi: f64, client_max: f64) {
    let env = Environment::office_a();
    let range = env.coverage_range_m();
    let cfg = TopologyConfig {
        das_radius_min_m: das_lo * range,
        das_radius_max_m: das_hi * range,
        min_sector_deg: 60.0,
        max_client_ap_m: client_max * range,
        ..TopologyConfig::das(4, 4)
    };
    let (mut d, mut c, mut ds, mut cs) = (0.0, 0.0, 0.0, 0.0);
    for seed in 0..6u64 {
        let mut rng = SimRng::new(100 + seed);
        let pair = PairedTopology::three_ap(&cfg, &mut rng);
        let mut mc = NetworkSimConfig::midas(env, seed); mc.rounds = 10;
        let mut cc = NetworkSimConfig::cas(env, seed); cc.rounds = 10;
        let rd = NetworkSimulator::new(pair.das, mc).run();
        let rc = NetworkSimulator::new(pair.cas, cc).run();
        d += rd.mean_capacity(); c += rc.mean_capacity();
        ds += rd.mean_streams(); cs += rc.mean_streams();
    }
    println!("{label}: MIDAS cap {:.1} (streams {:.1})  CAS cap {:.1} (streams {:.1})  gain {:.0}%", d/6.0, ds/6.0, c/6.0, cs/6.0, (d/c-1.0)*100.0);
}

fn main() {
    run("das 0.50-0.75 clients 0.85", 0.5, 0.75, 0.85);
    run("das 0.50-0.75 clients 0.50", 0.5, 0.75, 0.50);
    run("das 0.40-0.60 clients 0.50", 0.4, 0.6, 0.50);
    run("das 0.30-0.50 clients 0.45", 0.3, 0.5, 0.45);
    run("das 0.40-0.60 clients 0.40", 0.4, 0.6, 0.40);
}
