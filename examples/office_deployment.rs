//! Office deployment study: the workload the paper's introduction motivates —
//! an enterprise office AP serving a handful of one-antenna smart devices.
//!
//! Sweeps both testbed environments (Office A / Office B) and both antenna
//! counts (2x2 and 4x4) and reports the capacity CDFs, mirroring Figs. 8-9.
//!
//! Run with `cargo run --release --example office_deployment`.

use midas::prelude::*;

fn main() {
    for env in [EnvironmentKind::OfficeA, EnvironmentKind::OfficeB] {
        for antennas in [2usize, 4] {
            let s = ExperimentSpec::MuMimoCapacity {
                environment: env,
                antennas,
                topologies: 40,
            }
            .run(7)
            .expect_paired();
            let cas = Cdf::new(&s.cas);
            let das = Cdf::new(&s.das);
            println!(
                "{env:?} {antennas}x{antennas}: CAS median {:5.2} bit/s/Hz | MIDAS median {:5.2} bit/s/Hz | gain {:+.0}%",
                cas.median(),
                das.median(),
                (das.median() / cas.median() - 1.0) * 100.0
            );
        }
    }
    println!("\nDead-zone check (Office B, 10 random deployments):");
    let dead = ExperimentSpec::Deadzones { deployments: 5 }
        .run(11)
        .expect_deadzones();
    for (i, d) in dead.iter().enumerate() {
        println!(
            "  deployment {i}: CAS {:3} dead spots, DAS {:3} ({:.0}% removed)",
            d.cas_dead,
            d.das_dead,
            d.reduction() * 100.0
        );
    }
}
