//! Minimal offline stand-in for [criterion](https://crates.io/crates/criterion).
//!
//! Implements the subset of the criterion API this workspace's benches use:
//! [`Criterion`], [`BenchmarkId`], benchmark groups with `bench_with_input`
//! and `bench_function`, [`Bencher::iter`], [`black_box`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Instead of criterion's full statistical pipeline, each benchmark is run
//! for a short calibrated window and the mean iteration time is printed as
//! `bench: <group>/<id> ... <time>`. This keeps `cargo bench` fast while
//! preserving the targets as compile-checked, runnable entry points.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group, e.g. `zfbf/4`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id combining a function name and an input parameter.
    pub fn new<S: fmt::Display, P: fmt::Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id from a parameter only.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handle passed to the closure of `bench_*` methods.
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Measure `routine` over a short calibrated window.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and calibration: find an iteration count that fills the
        // measurement window, then time it.
        let mut n: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..n {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(20) || n >= 1 << 20 {
                self.iters_done = n;
                self.elapsed = elapsed;
                return;
            }
            n = n.saturating_mul(4);
        }
    }

    fn mean(&self) -> Duration {
        if self.iters_done == 0 {
            Duration::ZERO
        } else {
            self.elapsed / self.iters_done.min(u32::MAX as u64) as u32
        }
    }
}

fn format_time(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

fn run_one<I: ?Sized, F: FnMut(&mut Bencher, &I)>(label: &str, input: &I, mut f: F) -> BenchResult {
    let mut b = Bencher {
        iters_done: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut b, input);
    println!(
        "bench: {label:<40} {:>12}/iter ({} iters)",
        format_time(b.mean()),
        b.iters_done
    );
    BenchResult {
        label: label.to_string(),
        mean_ns: b.mean().as_nanos() as f64,
        iters: b.iters_done,
    }
}

/// Recorded outcome of one benchmark, retrievable via [`Criterion::results`].
///
/// Not part of the real criterion API — the MIDAS bench harness uses it to
/// feed timing tables into its figure sinks.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Full label, e.g. `precoder/zfbf/4`.
    pub label: String,
    /// Mean wall-clock time per iteration, in nanoseconds.
    pub mean_ns: f64,
    /// Iterations measured.
    pub iters: u64,
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Benchmark `f` against one `input`, labelled by `id`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let result = run_one(&format!("{}/{id}", self.name), input, f);
        self.criterion.results.push(result);
        self
    }

    /// Benchmark a closure taking only the bencher.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let result = run_one(&format!("{}/{id}", self.name), &(), |b, _| f(b));
        self.criterion.results.push(result);
        self
    }

    /// Consume the group (criterion reports summaries here; the stand-in has
    /// already printed per-benchmark lines).
    pub fn finish(self) {}

    /// Accepted and ignored, for API compatibility.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Accepted and ignored, for API compatibility.
    pub fn measurement_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }
}

/// Entry point handed to every benchmark function.
#[derive(Default)]
pub struct Criterion {
    results: Vec<BenchResult>,
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }

    /// Benchmark a standalone closure.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let result = run_one(&id.to_string(), &(), |b, _| f(b));
        self.results.push(result);
        self
    }

    /// Every benchmark outcome recorded so far, in execution order (a MIDAS
    /// harness extension; not present in the real criterion API).
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }
}

/// Collect benchmark functions into a runnable group, mirroring criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `fn main` running the given groups, mirroring criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
