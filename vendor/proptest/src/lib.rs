//! Minimal offline stand-in for [proptest](https://crates.io/crates/proptest).
//!
//! Implements the subset of the proptest API used by this workspace's test
//! suites: the [`proptest!`] macro, the [`strategy::Strategy`] trait with
//! `prop_map`/`prop_flat_map`, strategies for numeric ranges, tuples and
//! vectors, `any::<T>()`, and the `prop_assert!`/`prop_assert_eq!`/
//! `prop_assume!` macros.
//!
//! Test cases are generated from a deterministic per-test PRNG (seeded from
//! the test's module path and case index), so failures are reproducible
//! run-to-run. Unlike real proptest there is no shrinking: a failing case
//! reports its case number and the assertion message.

pub mod test_runner {
    //! Test-runner configuration, errors, and the deterministic PRNG.

    /// Configuration for a `proptest!` block (`#![proptest_config(...)]`).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of successful (non-rejected) cases required per test.
        pub cases: u32,
        /// Maximum number of `prop_assume!` rejections tolerated before the
        /// test aborts.
        pub max_global_rejects: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` successful cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                max_global_rejects: cases.saturating_mul(64).max(1024),
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig::with_cases(256)
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// The case was rejected by `prop_assume!` (does not count as a run).
        Reject(String),
        /// An assertion failed.
        Fail(String),
    }

    /// Deterministic SplitMix64 PRNG used to generate test cases.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator seeded with `seed` (any value, including 0, is fine).
        pub fn new(seed: u64) -> Self {
            TestRng {
                state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
            }
        }

        /// Next raw 64-bit draw (SplitMix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, 1)` with 53 bits of precision.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
        pub fn next_below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }

    /// FNV-1a hash of a string, used to derive per-test seeds.
    pub fn fnv1a(s: &str) -> u64 {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and the combinator/primitive strategies.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of type `Self::Value`.
    ///
    /// Unlike real proptest there is no value-tree/shrinking machinery: a
    /// strategy simply draws a value from the PRNG.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { base: self, f }
        }

        /// Generate an intermediate value, then generate from the strategy
        /// `f` builds out of it.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { base: self, f }
        }

        /// Reject generated values for which `f` returns false.
        ///
        /// Rejection is handled at generation time by redrawing (up to an
        /// internal retry bound), unlike real proptest's whence-tracked
        /// filters.
        fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                base: self,
                whence,
                f,
            }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.generate(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_flat_map`].
    #[derive(Clone, Debug)]
    pub struct FlatMap<S, F> {
        base: S,
        f: F,
    }

    impl<S, F, T> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        T: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.base.generate(rng)).generate(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_filter`].
    #[derive(Clone, Debug)]
    pub struct Filter<S, F> {
        base: S,
        whence: &'static str,
        f: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..10_000 {
                let v = self.base.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter retry bound exhausted: {}", self.whence)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start() + rng.next_f64() * (self.end() - self.start())
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.next_below(span) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64 + 1;
                    lo + rng.next_below(span) as $t
                }
            }
        )*};
    }

    int_range_strategy!(usize, u64, u32, u16, u8);

    macro_rules! signed_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i64 - self.start as i64) as u64;
                    (self.start as i64 + rng.next_below(span) as i64) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as i64, *self.end() as i64);
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64 + 1;
                    (lo + rng.next_below(span) as i64) as $t
                }
            }
        )*};
    }

    signed_range_strategy!(isize, i64, i32, i16, i8);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
    tuple_strategy!(A, B, C, D, E, F, G, H);
}

pub mod arbitrary {
    //! `any::<T>()` and the [`Arbitrary`] trait for the types the suites use.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary {
        /// Draw an unconstrained value of this type.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for u8 {
        fn arbitrary(rng: &mut TestRng) -> u8 {
            rng.next_u64() as u8
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> u32 {
            rng.next_u64() as u32
        }
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> u64 {
            rng.next_u64()
        }
    }

    impl Arbitrary for usize {
        fn arbitrary(rng: &mut TestRng) -> usize {
            rng.next_u64() as usize
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite full-range doubles; avoids NaN/inf which the numeric
            // suites never want.
            (rng.next_f64() - 0.5) * 2e6
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Any<T> {
        _marker: std::marker::PhantomData<T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`, e.g. `any::<bool>()`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: std::marker::PhantomData,
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy returned by [`vec()`](fn@vec).
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        count: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            (0..self.count)
                .map(|_| self.element.generate(rng))
                .collect()
        }
    }

    /// A vector of exactly `count` elements drawn from `element`.
    ///
    /// Real proptest takes `impl Into<SizeRange>` here; this stand-in
    /// supports the fixed-size form the workspace uses.
    pub fn vec<S: Strategy>(element: S, count: usize) -> VecStrategy<S> {
        VecStrategy { element, count }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude::*`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests: each `fn name(bindings in strategies) { body }`
/// becomes a `#[test]` running `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let base_seed = $crate::test_runner::fnv1a(concat!(module_path!(), "::", stringify!($name)));
                let mut passed: u32 = 0;
                let mut rejected: u32 = 0;
                let mut case: u64 = 0;
                while passed < config.cases {
                    case += 1;
                    if rejected > config.max_global_rejects {
                        panic!(
                            "proptest '{}': too many prop_assume! rejections ({} after {} passing cases)",
                            stringify!($name), rejected, passed
                        );
                    }
                    let mut __proptest_rng =
                        $crate::test_runner::TestRng::new(base_seed ^ case.wrapping_mul(0x517C_C1B7_2722_0A95));
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> = (|| {
                        $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __proptest_rng);)+
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match outcome {
                        ::std::result::Result::Ok(()) => passed += 1,
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => rejected += 1,
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!("proptest '{}' failed at case {}: {}", stringify!($name), case, msg);
                        }
                    }
                }
            }
        )*
    };
}

/// Assert a condition inside a `proptest!` body; failure fails the case with
/// the generated inputs' case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            lhs == rhs,
            "assertion failed: {} == {} ({:?} vs {:?})",
            stringify!($lhs), stringify!($rhs), lhs, rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(lhs == rhs, $($fmt)+);
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            lhs != rhs,
            "assertion failed: {} != {} (both {:?})",
            stringify!($lhs),
            stringify!($rhs),
            lhs
        );
    }};
}

/// Reject the current case (retried with fresh inputs, not counted as a run).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}
