//! Umbrella package of the MIDAS (CoNEXT'14) reproduction.
//!
//! This crate only hosts the runnable examples in `examples/` and the
//! cross-crate integration tests in `tests/`; the library surface lives in
//! the workspace crates (`midas`, `midas-phy`, `midas-mac`, `midas-net`,
//! `midas-channel`, `midas-linalg`).

#![forbid(unsafe_code)]

pub use midas;
